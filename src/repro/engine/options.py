"""The unified query-options object.

Every knob that used to be threaded through ``Database.execute`` /
``profile`` / ``explain_analyze`` as an ad-hoc keyword now lives on one
frozen dataclass, :class:`QueryOptions`:

* ``strategy``      — which evaluation strategy runs (see
  :data:`STRATEGIES`; the planner's docstring describes each).
* ``mode``          — the GMDJ execution regime: ``None``/"plain" for
  single-scan evaluation, ``"chunked"`` for memory-bounded base
  chunking (§2.3), ``"partitioned"`` for detail-partitioned evaluation
  with columnwise merge, ``"gmdj_vectorized"`` (alias
  ``"vectorized"``) for columnar batch execution
  (:mod:`repro.gmdj.vectorized`).
* ``backend``       — the array-kernel backend for vectorized scans:
  ``"python"`` forces the dependency-free batch kernel, ``"numpy"``
  requires the whole-array numpy kernel
  (:mod:`repro.gmdj.npkernel`), ``"auto"`` picks numpy when
  importable.  Setting it implies ``mode="gmdj_vectorized"``; ``None``
  defers to the ``REPRO_BACKEND`` environment hook at kernel dispatch.
* ``partitions``    — fragment count for partitioned mode.
* ``workers``       — worker-pool size for partitioned mode (1 =
  sequential fragments; defaults to ``REPRO_WORKERS``).
* ``chunk_budget``  — base-tuple memory budget for chunked mode.
* ``chunk_size``    — detail rows per batch for the vectorized mode
  (setting it implies ``mode="gmdj_vectorized"``).
* ``trace``         — record an operator span tree during profiling.
* ``use_cache``     — consult the database's plan/result cache.
* ``rollup``        — the semantic rollup tier
  (:mod:`repro.engine.rollup`): ``None``/``"off"`` disables it,
  ``"exact"`` answers GMDJ nodes whose signature was materialized
  verbatim, ``"subsume"`` additionally answers finer queries from
  coarser stored rollups via residual filtering.  Orthogonal to
  ``use_cache`` (which caches whole query results by exact key).
* ``lint``          — run the static plan verifier (:mod:`repro.lint`)
  over the translated plan before executing it: ``None``/``"off"``
  skips it, ``"warn"`` surfaces error diagnostics as Python warnings,
  ``"strict"`` raises :class:`~repro.errors.LintError` fail-fast.
* ``mqo``           — multi-query optimization for batch execution
  (:mod:`repro.engine.mqo`): ``"off"`` runs every batch member
  independently, ``"fingerprint"`` forms share groups and reports them
  but still executes per query, ``"coalesce"`` merges each group into
  one multi-consumer GMDJ over a single detail scan.  ``None`` defers
  to the ``REPRO_MQO`` environment hook and then to the batch default
  (``"coalesce"``).  Only ``Database.execute_batch`` /
  ``execute_sql_batch`` consult it; single-query entry points ignore it.

The legacy strategy names ``gmdj_chunked`` / ``gmdj_parallel`` conflated
strategy with execution mode; :meth:`QueryOptions.canonical` maps them
onto ``strategy="gmdj"`` plus the corresponding ``mode`` so the rest of
the engine only ever sees the separated form.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError, PlanError

STRATEGIES = (
    "naive",
    "native",
    "native_noindex",
    "unnest_join",
    "unnest_join_noindex",
    "gmdj",
    "gmdj_coalesce",
    "gmdj_completion",
    "gmdj_optimized",
    "gmdj_chunked",
    "gmdj_parallel",
    "cost_based",
    "auto",
)

#: Strategies that produce a GMDJ plan — the only ones an execution
#: ``mode`` applies to.
GMDJ_STRATEGIES = frozenset({
    "gmdj", "gmdj_coalesce", "gmdj_completion", "gmdj_optimized",
    "gmdj_chunked", "gmdj_parallel", "auto", "cost_based",
})

MODES = (None, "plain", "chunked", "partitioned", "gmdj_vectorized")

#: Array-kernel backends for the vectorized mode.  ``None`` defers to the
#: ``REPRO_BACKEND`` environment hook at kernel dispatch (defaulting to
#: the dependency-free Python batch kernel); ``"auto"`` picks numpy when
#: importable, else python.
BACKENDS = (None, "python", "numpy", "auto")

#: Environment hook supplying the *default* array-kernel backend for
#: vectorized scans whose options left ``backend`` unset.  Composes with
#: ``REPRO_MODE=gmdj_vectorized`` (the CI numpy matrix leg sets both).
REPRO_BACKEND_ENV = "REPRO_BACKEND"

#: Accepted spellings that normalize onto a canonical mode name.
_MODE_ALIASES = {"vectorized": "gmdj_vectorized"}

#: Environment hook letting a harness (e.g. the CI matrix leg) override
#: the *default* execution mode.  Only consulted when neither ``mode``
#: nor any mode-implying knob was set explicitly.
REPRO_MODE_ENV = "REPRO_MODE"

#: Legacy strategy names that really name (strategy, mode) pairs.
_LEGACY_MODES = {
    "gmdj_chunked": ("gmdj", "chunked"),
    "gmdj_parallel": ("gmdj", "partitioned"),
}

LINT_LEVELS = (None, "off", "warn", "strict")

ROLLUP_LEVELS = (None, "off", "exact", "subsume")

MQO_LEVELS = (None, "off", "fingerprint", "coalesce")

#: Environment hook forcing a batch-MQO level (``off`` / ``fingerprint``
#: / ``coalesce``) for batches whose options left ``mqo`` unset — the CI
#: matrix leg's override.  An explicit ``mqo=...`` always wins.
REPRO_MQO_ENV = "REPRO_MQO"

#: Environment hook letting a harness (e.g. the CI rollup leg) force the
#: rollup tier on.  Only consulted for *unprofiled* runs that did not set
#: ``rollup`` explicitly — profiled runs measure real work, and a
#: harness-injected cache hit would measure nothing (mirroring how
#: profiled runs never consult the result cache).  ``rollup="off"``
#: explicitly opts a run out even under the environment override.
REPRO_ROLLUP_ENV = "REPRO_ROLLUP"


@dataclass(frozen=True)
class QueryOptions:
    """Immutable bundle of execution options for one query run."""

    strategy: str = "auto"
    mode: str | None = None
    backend: str | None = None
    partitions: int | None = None
    workers: int | None = None
    chunk_budget: int | None = None
    chunk_size: int | None = None
    trace: bool = False
    use_cache: bool = True
    lint: str | None = None
    rollup: str | None = None
    mqo: str | None = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise PlanError(
                f"unknown strategy {self.strategy!r}; "
                f"choose one of {STRATEGIES}"
            )
        if self.mode in _MODE_ALIASES:
            object.__setattr__(self, "mode", _MODE_ALIASES[self.mode])
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose one of {MODES}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                f"choose one of {BACKENDS}"
            )
        if self.backend == "numpy":
            # Fail fast with a clean error instead of at kernel dispatch.
            from repro.storage.npcolumns import require_numpy

            require_numpy()
        if self.lint not in LINT_LEVELS:
            raise ConfigurationError(
                f"unknown lint level {self.lint!r}; "
                f"choose one of {LINT_LEVELS}"
            )
        if self.rollup not in ROLLUP_LEVELS:
            raise ConfigurationError(
                f"unknown rollup level {self.rollup!r}; "
                f"choose one of {ROLLUP_LEVELS}"
            )
        if self.mqo not in MQO_LEVELS:
            raise ConfigurationError(
                f"unknown mqo level {self.mqo!r}; "
                f"choose one of {MQO_LEVELS}"
            )
        for name in ("partitions", "workers", "chunk_budget", "chunk_size"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {value}"
                )

    @classmethod
    def of(cls, value: "QueryOptions | str | None") -> "QueryOptions":
        """Coerce ``None`` / a strategy string / an options object.

        The string form exists for the deprecated ``strategy: str``
        shims; new code should construct :class:`QueryOptions` directly.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(strategy=value)
        raise ConfigurationError(
            f"expected QueryOptions, a strategy name, or None; "
            f"got {value!r}"
        )

    def canonical(self) -> "QueryOptions":
        """Normalize legacy strategy names and infer the execution mode.

        * ``gmdj_chunked`` / ``gmdj_parallel`` become ``gmdj`` plus the
          matching mode;
        * requesting ``chunk_size`` without a mode implies
          ``gmdj_vectorized``; ``partitions``/``workers``
          (``chunk_budget``) imply ``partitioned`` (``chunked``) for
          GMDJ-producing strategies;
        * with neither a mode nor any mode-implying knob, the
          ``REPRO_MODE`` environment variable supplies the default mode
          for GMDJ strategies (the CI matrix leg's override hook);
        * a mode on a non-GMDJ strategy is a configuration error — the
          baselines have no GMDJ nodes to fragment.

        The vectorized mode composes with the fragmentation knobs:
        ``chunk_budget`` selects base-chunked evaluation with batch
        kernels, ``partitions``/``workers`` selects partitioned (possibly
        pooled) evaluation with batch kernels — but not both at once.
        """
        strategy, mode = self.strategy, self.mode
        if strategy in _LEGACY_MODES:
            base, implied = _LEGACY_MODES[strategy]
            if mode not in (None, "plain", implied):
                raise ConfigurationError(
                    f"strategy {strategy!r} implies mode {implied!r}; "
                    f"got mode {mode!r}"
                )
            strategy, mode = base, (implied if mode != "plain" else "plain")
        if mode is None:
            if self.backend is not None or self.chunk_size is not None:
                mode = "gmdj_vectorized"
            elif self.partitions is not None or self.workers is not None:
                if self.chunk_budget is not None:
                    raise ConfigurationError(
                        "cannot infer a mode from both partitions/workers "
                        "and chunk_budget; set mode explicitly"
                    )
                mode = "partitioned"
            elif self.chunk_budget is not None:
                mode = "chunked"
            elif self.mode is None and strategy in GMDJ_STRATEGIES:
                mode = self._environment_mode()
        if mode == "plain":
            mode = None
        if mode is not None and strategy not in GMDJ_STRATEGIES:
            raise ConfigurationError(
                f"mode {mode!r} applies only to GMDJ strategies, "
                f"not {strategy!r}"
            )
        if self.chunk_size is not None and mode != "gmdj_vectorized":
            raise ConfigurationError(
                f"chunk_size applies only to mode 'gmdj_vectorized', "
                f"not {mode!r}"
            )
        if self.backend is not None and mode != "gmdj_vectorized":
            raise ConfigurationError(
                f"backend applies only to mode 'gmdj_vectorized', "
                f"not {mode!r}"
            )
        if mode == "gmdj_vectorized":
            if (self.chunk_budget is not None
                    and (self.partitions is not None
                         or self.workers is not None)):
                raise ConfigurationError(
                    "vectorized mode composes with either chunk_budget "
                    "or partitions/workers, not both"
                )
        elif mode == "partitioned" and self.chunk_budget is not None:
            raise ConfigurationError(
                "chunk_budget is meaningless in partitioned mode"
            )
        elif mode == "chunked" and (self.partitions is not None
                                    or self.workers is not None):
            raise ConfigurationError(
                "partitions/workers are meaningless in chunked mode"
            )
        rollup = None if self.rollup == "off" else self.rollup
        if (strategy == self.strategy and mode == self.mode
                and rollup == self.rollup):
            return self
        return dataclasses.replace(
            self, strategy=strategy, mode=mode, rollup=rollup
        )

    @staticmethod
    def environment_rollup() -> str | None:
        """The ``REPRO_ROLLUP`` forced-rollup override, validated.

        Returns a canonical level (``"off"`` maps to ``None``); the
        executor applies it only to unprofiled runs whose options left
        ``rollup`` unset.
        """
        import os

        value = os.environ.get(REPRO_ROLLUP_ENV)
        if not value:
            return None
        if value not in ROLLUP_LEVELS:
            raise ConfigurationError(
                f"{REPRO_ROLLUP_ENV}={value!r} is not a rollup level; "
                f"choose one of {ROLLUP_LEVELS[1:]}"
            )
        return None if value == "off" else value

    @staticmethod
    def environment_mqo() -> str | None:
        """The ``REPRO_MQO`` batch-MQO override, validated.

        Returns the raw level (``"off"`` stays ``"off"`` — it must
        suppress the batch default, unlike an unset variable), or None
        when the environment leaves the batch default in force.
        """
        import os

        value = os.environ.get(REPRO_MQO_ENV)
        if not value:
            return None
        if value not in MQO_LEVELS:
            raise ConfigurationError(
                f"{REPRO_MQO_ENV}={value!r} is not an mqo level; "
                f"choose one of {MQO_LEVELS[1:]}"
            )
        return value

    @staticmethod
    def environment_backend() -> str | None:
        """The ``REPRO_BACKEND`` default-backend override, validated.

        Consulted at kernel dispatch for vectorized scans whose options
        left ``backend`` unset; an explicit ``backend=...`` always wins.
        """
        import os

        value = os.environ.get(REPRO_BACKEND_ENV)
        if not value:
            return None
        if value not in BACKENDS:
            raise ConfigurationError(
                f"{REPRO_BACKEND_ENV}={value!r} is not a backend; "
                f"choose one of {BACKENDS[1:]}"
            )
        return value

    @staticmethod
    def _environment_mode() -> str | None:
        """The ``REPRO_MODE`` default-mode override, validated."""
        import os

        value = os.environ.get(REPRO_MODE_ENV)
        if not value:
            return None
        value = _MODE_ALIASES.get(value, value)
        if value not in MODES:
            raise ConfigurationError(
                f"{REPRO_MODE_ENV}={value!r} is not a mode; "
                f"choose one of {MODES[1:]}"
            )
        return value

    def with_trace(self, trace: bool) -> "QueryOptions":
        if trace == self.trace:
            return self
        return dataclasses.replace(self, trace=trace)

    def cache_key(self) -> tuple:
        """The options components that affect a query's cached artifacts.

        ``lint`` participates because a lint-gated run that would have
        raised must not be satisfied from a result another options
        object cached.
        """
        canon = self.canonical()
        lint = None if canon.lint == "off" else canon.lint
        mqo = None if canon.mqo == "off" else canon.mqo
        return (canon.strategy, canon.mode, canon.backend, canon.partitions,
                canon.workers, canon.chunk_budget, canon.chunk_size, lint,
                canon.rollup, mqo)
