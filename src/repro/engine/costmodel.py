"""A coarse cost model for subquery evaluation strategies.

The paper's conclusion: "Because the GMDJ evaluation has a well-defined
cost [1], it is easy to incorporate the GMDJ algorithm proposed in this
paper into a cost-based framework … allowing the cost-based query
optimizer to select between a rich set of alternatives (joins,
set-division and GMDJs) for the subquery evaluation."

This module implements that framework at the granularity the paper
reasons at: per subquery leaf, the estimated number of tuple touches for
each strategy, driven by three catalog facts — table cardinalities,
whether the correlation has an equality conjunct (hash-partitionable),
and whether that attribute is indexed.  The estimates are deliberately
simple (no selectivity statistics) but they rank the strategies correctly
on all of the paper's workload shapes, which is what the tests pin down:

* indexed equality EXISTS with a small outer block → native wins;
* unindexed anything → GMDJ (scan cost only);
* ``<>``-correlated ALL → completion-optimized GMDJ or native, never
  join unnesting;
* several subqueries over one table → coalesced GMDJ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.algebra.expressions import Column, Comparison, conjuncts_of
from repro.algebra.nested import (
    NestedSelect,
    SubqueryPredicate,
    collect_subquery_predicates,
)
from repro.algebra.operators import Operator, ScanTable
from repro.engine.planner import contains_nested_select
from repro.engine.statistics import TableStatistics
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema

#: Cost charged per tuple touched through an index probe chain, relative
#: to a sequential scan touch.  Probes are cheaper per-tuple.
_PROBE_WEIGHT = 0.5
#: Early-exit discount for EXISTS/ALL-style loops (first hit decides).
_EARLY_EXIT = 0.25
#: A stand-in for "do not pick this" (unsupported / catastrophic).
INFEASIBLE = math.inf


@dataclass
class LeafProfile:
    """What the cost model knows about one subquery leaf."""

    table: str | None  # inner table name when the source is a plain scan
    inner_rows: int
    has_equality_correlation: bool
    correlation_indexed: bool
    correlated: bool
    correlation_column: str | None = None  # bare inner attribute name


@dataclass
class CostEstimate:
    """Per-strategy tuple-touch estimates for one query."""

    outer_rows: int
    leaves: list[LeafProfile] = field(default_factory=list)
    costs: dict[str, float] = field(default_factory=dict)

    def best(self) -> str:
        return min(self.costs, key=lambda name: self.costs[name])


def _profile_leaf(leaf: SubqueryPredicate, catalog: Catalog,
                  outer_schema: Schema) -> LeafProfile:
    source = leaf.subquery.source
    table = source.table_name if isinstance(source, ScanTable) else None
    if table is not None and catalog.has_table(table):
        inner_rows = len(catalog.table(table))
    else:
        inner_rows = 1000  # arbitrary prior for derived sources
    has_equality = False
    indexed = False
    correlated = False
    correlation_column = None
    if table is not None:
        inner_schema = source.schema(catalog)
        for conjunct in conjuncts_of(leaf.subquery.predicate):
            if not isinstance(conjunct, Comparison):
                continue
            sides = (conjunct.left, conjunct.right)
            for inner_side, outer_side in (sides, sides[::-1]):
                if not isinstance(inner_side, Column):
                    continue
                if not inner_schema.has(inner_side.reference):
                    continue
                outer_refs = outer_side.references()
                if not outer_refs:
                    continue
                if any(inner_schema.has(ref) for ref in outer_refs):
                    continue
                correlated = True
                if conjunct.op == "=":
                    has_equality = True
                    bare = inner_schema.field_of(inner_side.reference).name
                    correlation_column = bare
                    if bare in catalog.indexed_attributes(table):
                        indexed = True
    return LeafProfile(table, inner_rows, has_equality, indexed, correlated,
                       correlation_column)


def estimate_costs(query: Operator, catalog: Catalog,
                   statistics: dict[str, TableStatistics] | None = None) -> CostEstimate:
    """Estimate tuple touches per strategy for a (possibly nested) query.

    Only the outermost NestedSelect is profiled — strategy choice is a
    per-query decision and the outer block dominates.  With ``statistics``
    (from :func:`repro.engine.statistics.analyze_catalog`) the native
    probe estimate uses true rows-per-key instead of the uniform prior.
    """
    nested = _find_nested(query)
    if nested is None:
        estimate = CostEstimate(outer_rows=0)
        estimate.costs = {"gmdj": 0.0}
        return estimate
    outer_rows = _cardinality(nested.child, catalog)
    leaves = [
        _profile_leaf(leaf, catalog, None)
        for leaf in collect_subquery_predicates(nested.predicate)
    ]
    estimate = CostEstimate(outer_rows=outer_rows, leaves=leaves)

    total_inner = sum(leaf.inner_rows for leaf in leaves)
    distinct_tables = {leaf.table for leaf in leaves if leaf.table}
    distinct_inner = sum(
        max((l.inner_rows for l in leaves if l.table == table), default=0)
        for table in distinct_tables
    ) or total_inner

    # naive: full inner scan per outer tuple, per leaf.
    estimate.costs["naive"] = float(outer_rows) * total_inner or 1.0

    # native: probes when indexed-equality, else early-exit loops.
    native = 0.0
    for leaf in leaves:
        per_outer_matches = max(1.0, leaf.inner_rows / max(outer_rows, 1))
        if (statistics is not None and leaf.table in statistics
                and leaf.correlation_column is not None):
            per_outer_matches = max(
                1.0,
                statistics[leaf.table].matches_per_key(
                    leaf.correlation_column
                ),
            )
        if leaf.has_equality_correlation and leaf.correlation_indexed:
            native += outer_rows * per_outer_matches * _PROBE_WEIGHT
        else:
            native += outer_rows * leaf.inner_rows * _EARLY_EXIT
    estimate.costs["native"] = native or 1.0

    # join unnesting: hash plans when every leaf has equality correlation.
    if all(leaf.has_equality_correlation or not leaf.correlated
           for leaf in leaves):
        estimate.costs["unnest_join"] = float(
            sum(outer_rows + leaf.inner_rows for leaf in leaves)
        ) or 1.0
    else:
        # A non-equality correlation forces a nested-loop θ-join (the
        # paper's 7-hour Figure 4 case).
        estimate.costs["unnest_join"] = float(outer_rows) * total_inner * 2

    # gmdj: one scan per distinct leaf... unoptimized stacks scan per leaf;
    # blocks without an equality conjunct test every base tuple per
    # detail tuple.
    gmdj = 0.0
    for leaf in leaves:
        if leaf.has_equality_correlation or not leaf.correlated:
            gmdj += outer_rows + leaf.inner_rows
        else:
            gmdj += outer_rows * leaf.inner_rows
    estimate.costs["gmdj"] = gmdj or 1.0

    # gmdj_optimized: coalescing shares scans per distinct table and
    # completion discounts the scan-partition blocks.
    optimized = float(outer_rows + distinct_inner)
    for leaf in leaves:
        if leaf.correlated and not leaf.has_equality_correlation:
            optimized += outer_rows * leaf.inner_rows * _EARLY_EXIT
    estimate.costs["gmdj_optimized"] = optimized or 1.0

    return estimate


def contains_apply(operator: Operator) -> bool:
    """True when the tree holds an APPLY node (SELECT-list subquery)."""
    from repro.algebra.apply_op import Apply

    if isinstance(operator, Apply):
        return True
    return any(
        contains_apply(child)
        for child in getattr(operator, "children", lambda: ())()
    )


def choose_strategy(query: Operator, catalog: Catalog) -> str:
    """Pick the estimated-cheapest strategy for this query."""
    if not contains_nested_select(query):
        # SELECT-list subqueries (APPLY) only get rewritten to GMDJs on
        # the gmdj strategies; anything else loops per outer tuple.
        if contains_apply(query):
            return "gmdj_optimized"
        return "gmdj"  # degenerates to plain evaluation in the planner
    estimate = estimate_costs(query, catalog)
    if contains_apply(query):
        for loop_strategy in ("naive", "native", "unnest_join"):
            estimate.costs.pop(loop_strategy, None)
    return estimate.best()


def _find_nested(operator: Operator) -> NestedSelect | None:
    if isinstance(operator, NestedSelect):
        return operator
    for child in getattr(operator, "children", lambda: ())():
        found = _find_nested(child)
        if found is not None:
            return found
    return None


def _cardinality(operator: Operator, catalog: Catalog) -> int:
    if isinstance(operator, ScanTable) and catalog.has_table(
        operator.table_name
    ):
        return len(catalog.table(operator.table_name))
    sizes = [
        _cardinality(child, catalog)
        for child in getattr(operator, "children", lambda: ())()
    ]
    if sizes:
        return max(sizes)
    return 100  # prior for sources the model cannot see through
