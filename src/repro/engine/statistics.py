"""Table statistics: cardinalities and per-column profiles.

A conventional cost-based optimizer keeps per-column statistics; this
module computes the subset the cost model consumes — row counts, distinct
counts, NULL counts, and min/max — with a single pass per table.

>>> from repro.storage import Relation, DataType
>>> r = Relation.from_columns([("k", DataType.INTEGER)], [(1,), (1,), (None,)])
>>> analyze_table(r).columns["k"].distinct_count
1
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation


@dataclass
class ColumnStatistics:
    """Profile of one column (NULLs excluded from distinct/min/max)."""

    distinct_count: int = 0
    null_count: int = 0
    minimum: object = None
    maximum: object = None

    def selectivity_of_equality(self, row_count: int) -> float:
        """Estimated fraction of rows matching one equality literal."""
        non_null = row_count - self.null_count
        if non_null <= 0 or self.distinct_count == 0:
            return 0.0
        return 1.0 / self.distinct_count


@dataclass
class TableStatistics:
    """Statistics for one table."""

    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def matches_per_key(self, column: str) -> float:
        """Expected rows per distinct value of ``column``."""
        stats = self.columns.get(column)
        if stats is None or stats.distinct_count == 0:
            return float(self.row_count)
        return (self.row_count - stats.null_count) / stats.distinct_count


def analyze_table(relation: Relation) -> TableStatistics:
    """Profile every column of a relation in one scan."""
    IOStats.ambient().record_scan(len(relation))
    table_stats = TableStatistics(row_count=len(relation))
    distinct: list[set] = [set() for _ in relation.schema]
    nulls = [0] * len(relation.schema)
    minima: list = [None] * len(relation.schema)
    maxima: list = [None] * len(relation.schema)
    for row in relation.rows:
        for position, value in enumerate(row):
            if value is None:
                nulls[position] += 1
                continue
            distinct[position].add(value)
            if minima[position] is None or value < minima[position]:
                minima[position] = value
            if maxima[position] is None or value > maxima[position]:
                maxima[position] = value
    for position, column in enumerate(relation.schema.fields):
        table_stats.columns[column.name] = ColumnStatistics(
            distinct_count=len(distinct[position]),
            null_count=nulls[position],
            minimum=minima[position],
            maximum=maxima[position],
        )
    return table_stats


def analyze_catalog(catalog: Catalog) -> dict[str, TableStatistics]:
    """Profile every table of a catalog: ``{table_name: TableStatistics}``."""
    return {
        name: analyze_table(catalog.table(name))
        for name in catalog.table_names()
    }
