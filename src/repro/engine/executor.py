"""Query execution with timing, work accounting, and optional tracing.

:func:`run` is the single execution path: it coerces whatever options
form the caller holds, builds the executor, and (when profiling)
captures wall-clock, counters, and the span tree.  ``execute`` and
``profile`` are thin spellings over it — ``execute`` skips the
counter-collection swap entirely so callers may keep wrapping it in
their own :func:`repro.storage.iostats.collect`.
"""

from __future__ import annotations

import time

from repro.algebra.operators import Operator
from repro.engine.cache import PlanCache
from repro.engine.options import QueryOptions
from repro.engine.planner import make_executor
from repro.engine.reports import ExecutionReport
from repro.engine.rollup import RollupStore
from repro.obs.tracer import Tracer, tracing, tracing_enabled
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.iostats import collect


def run(
    query: Operator,
    catalog: Catalog,
    options: QueryOptions | str | None = None,
    cache: PlanCache | None = None,
    profiled: bool = True,
    rollups: RollupStore | None = None,
) -> ExecutionReport:
    """Evaluate ``query`` under ``options``; the one execution path.

    With ``profiled`` the run is wrapped in a fresh IOStats collection
    and timed, and ``options.trace`` installs a tracer (unless one is
    already active) whose finished span tree lands on the report — this
    is what EXPLAIN ANALYZE consumes.  The ``collect()`` swap happens
    *outside* the traced region so every span snapshots the same ambient
    stats object it diffs against.  Without ``profiled`` the query just
    runs: no counter swap (the caller may be collecting), no tracer
    installation, and the report carries only the result.
    """
    options = QueryOptions.of(options)
    if rollups is not None and options.rollup is None and not profiled:
        # The REPRO_ROLLUP forced-on hook: unprofiled runs that left the
        # knob unset pick up the environment default.  Profiled runs are
        # exempt (they measure real work), and an explicit
        # ``rollup="off"`` opts out.
        environment = QueryOptions.environment_rollup()
        if environment is not None:
            import dataclasses

            options = dataclasses.replace(options, rollup=environment)
    runner = make_executor(query, catalog, options, cache=cache,
                           rollups=rollups)
    if not profiled:
        return ExecutionReport(
            strategy=options.strategy, elapsed_seconds=0.0,
            result=runner(), options=options,
        )
    trace_obj = None
    with collect() as stats:
        started = time.perf_counter()
        if options.trace and not tracing_enabled():
            tracer = Tracer()
            with tracing(tracer):
                result = runner()
            trace_obj = tracer.trace()
        else:
            result = runner()
        elapsed = time.perf_counter() - started
    return ExecutionReport(
        strategy=options.strategy,
        elapsed_seconds=elapsed,
        counters=stats.snapshot(),
        result=result,
        trace=trace_obj,
        options=options,
    )


def execute(query: Operator, catalog: Catalog,
            options: QueryOptions | str = "auto") -> Relation:
    """Evaluate ``query`` under ``options``; returns the result relation."""
    return run(query, catalog, options, profiled=False).result


def profile(
    query: Operator, catalog: Catalog,
    options: QueryOptions | str = "auto",
    trace: bool = False,
) -> ExecutionReport:
    """Evaluate ``query`` and capture wall-clock time and work counters."""
    options = QueryOptions.of(options)
    if trace:
        options = options.with_trace(True)
    return run(query, catalog, options)
