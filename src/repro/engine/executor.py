"""Query execution with timing, work accounting, and optional tracing."""

from __future__ import annotations

import time

from repro.algebra.operators import Operator
from repro.engine.planner import make_executor
from repro.engine.reports import ExecutionReport
from repro.obs.tracer import Tracer, tracing, tracing_enabled
from repro.storage.catalog import Catalog
from repro.storage.iostats import collect


def execute(query: Operator, catalog: Catalog, strategy: str = "auto"):
    """Evaluate ``query`` under ``strategy``; returns the result relation."""
    return make_executor(query, catalog, strategy)()


def profile(
    query: Operator, catalog: Catalog, strategy: str = "auto",
    trace: bool = False,
) -> ExecutionReport:
    """Evaluate ``query`` and capture wall-clock time and work counters.

    With ``trace=True`` a tracer is installed for the run (unless one is
    already active) and the finished span tree is attached to the
    report as ``report.trace`` — this is what EXPLAIN ANALYZE consumes.
    The ``collect()`` swap happens *outside* the traced region so every
    span snapshots the same ambient stats object it diffs against.
    """
    runner = make_executor(query, catalog, strategy)
    trace_obj = None
    with collect() as stats:
        started = time.perf_counter()
        if trace and not tracing_enabled():
            tracer = Tracer()
            with tracing(tracer):
                result = runner()
            trace_obj = tracer.trace()
        else:
            result = runner()
        elapsed = time.perf_counter() - started
    return ExecutionReport(
        strategy=strategy,
        elapsed_seconds=elapsed,
        counters=stats.snapshot(),
        result=result,
        trace=trace_obj,
    )
