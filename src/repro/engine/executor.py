"""Query execution with timing and work accounting."""

from __future__ import annotations

import time

from repro.algebra.operators import Operator
from repro.engine.planner import make_executor
from repro.engine.stats import ExecutionReport
from repro.storage.catalog import Catalog
from repro.storage.iostats import collect


def execute(query: Operator, catalog: Catalog, strategy: str = "auto"):
    """Evaluate ``query`` under ``strategy``; returns the result relation."""
    return make_executor(query, catalog, strategy)()


def profile(
    query: Operator, catalog: Catalog, strategy: str = "auto"
) -> ExecutionReport:
    """Evaluate ``query`` and capture wall-clock time and work counters."""
    runner = make_executor(query, catalog, strategy)
    with collect() as stats:
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
    return ExecutionReport(
        strategy=strategy,
        elapsed_seconds=elapsed,
        counters=stats.snapshot(),
        result=result,
    )
