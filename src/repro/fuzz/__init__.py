"""Differential SQL fuzzing with a SQLite ground-truth oracle.

The package generates random subquery SQL (all six Table-1 forms, linear
nesting, non-neighboring correlation, coalescing-eligible conjunctions)
over random NULL-heavy databases, executes each query under every
evaluation strategy the planner knows plus the chunked and partitioned
GMDJ modes, and compares all of them against stdlib ``sqlite3`` as an
external ground truth.  Failing cases are shrunk to minimal reproducible
(query, database) pairs and saved as JSON for the regression corpus in
``tests/corpus/``.

Entry points: ``repro fuzz`` on the command line, or::

    from repro.fuzz import FuzzConfig, run_fuzz
    report = run_fuzz(FuzzConfig(seed=42, iterations=500))
"""

from repro.fuzz.datagen import DatabaseSpec, TableSpec, random_database
from repro.fuzz.generator import GrammarConfig, random_query
from repro.fuzz.oracle import (
    ALL_ENGINES,
    CaseOutcome,
    Divergence,
    run_differential,
    sqlite_oracle_rows,
)
from repro.fuzz.queries import QueryIR, render_repro_sql, render_sqlite_sql
from repro.fuzz.runner import (
    Counterexample,
    FuzzConfig,
    FuzzReport,
    replay_case,
    run_fuzz,
)
from repro.fuzz.shrinker import shrink_case

__all__ = [
    "ALL_ENGINES",
    "CaseOutcome",
    "Counterexample",
    "DatabaseSpec",
    "Divergence",
    "FuzzConfig",
    "FuzzReport",
    "GrammarConfig",
    "QueryIR",
    "TableSpec",
    "random_database",
    "random_query",
    "render_repro_sql",
    "render_sqlite_sql",
    "replay_case",
    "run_differential",
    "run_fuzz",
    "shrink_case",
    "sqlite_oracle_rows",
]
