"""Counterexample minimization for failing (query, database) pairs.

Classic greedy delta-debugging, specialized to the fuzzer's IR: a move
either removes table rows (chunks of halving size, then single rows) or
applies a one-step structural simplification to the predicate tree —
take one side of an AND/OR, unwrap a NOT, clear a negation flag, drop a
subquery-local conjunct, or pull an integer literal toward zero.  A move
is kept only when the shrunk case *still fails* the differential check,
so the output reproduces the original divergence with as little noise as
possible.  Progress is measured by (total rows, predicate node count),
which strictly decreases except for literal moves (bounded separately),
so the loop terminates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.fuzz.datagen import DatabaseSpec, TableSpec
from repro.fuzz.queries import (
    AggCmp,
    AndP,
    Cmp,
    ExistsP,
    InP,
    Lit,
    NotP,
    OrP,
    QuantCmp,
    QueryIR,
    Sub,
    predicate_size,
)

#: Re-checks are cheap (tiny cases) but each runs ~10 engines; cap the
#: total so pathological cases cannot stall a campaign.
DEFAULT_MAX_CHECKS = 400


def _predicate_candidates(node) -> Iterator:
    """One-step simplifications of a predicate tree, smaller-first."""
    if isinstance(node, (AndP, OrP)):
        yield node.left
        yield node.right
        for left in _predicate_candidates(node.left):
            yield type(node)(left, node.right)
        for right in _predicate_candidates(node.right):
            yield type(node)(node.left, right)
    elif isinstance(node, NotP):
        yield node.operand
        for operand in _predicate_candidates(node.operand):
            yield NotP(operand)
    elif isinstance(node, (ExistsP, InP)):
        if node.negated:
            yield replace(node, negated=False)
        yield from (replace(node, sub=sub)
                    for sub in _sub_candidates(node.sub))
    elif isinstance(node, (QuantCmp, AggCmp)):
        yield from (replace(node, sub=sub)
                    for sub in _sub_candidates(node.sub))
    elif isinstance(node, Cmp):
        for operand_name in ("left", "right"):
            operand = getattr(node, operand_name)
            if isinstance(operand, Lit) and isinstance(operand.value, int):
                if operand.value != 0:
                    yield replace(node, **{operand_name: Lit(0)})
                if abs(operand.value) > 1:
                    yield replace(
                        node, **{operand_name: Lit(operand.value // 2)})


def _sub_candidates(sub: Sub) -> Iterator[Sub]:
    if sub.where is None:
        return
    yield replace(sub, where=None)
    for where in _predicate_candidates(sub.where):
        yield replace(sub, where=where)


def _row_removal_candidates(dbspec: DatabaseSpec) -> Iterator[DatabaseSpec]:
    """Databases with one chunk of rows removed from one table."""
    for name, table in dbspec.tables.items():
        count = len(table.rows)
        chunk = count
        while chunk >= 1:
            for start in range(0, count, chunk):
                rows = table.rows[:start] + table.rows[start + chunk:]
                if len(rows) == count:
                    continue
                tables = dict(dbspec.tables)
                tables[name] = TableSpec(table.name, table.columns, rows)
                yield DatabaseSpec(tables)
            chunk //= 2


def _literal_weight(node) -> int:
    """Sum of integer-literal magnitudes — lets ``Lit -> 0`` moves count
    as progress even though they keep the node count unchanged."""
    if isinstance(node, (AndP, OrP)):
        return _literal_weight(node.left) + _literal_weight(node.right)
    if isinstance(node, NotP):
        return _literal_weight(node.operand)
    if isinstance(node, (ExistsP, InP, QuantCmp, AggCmp)):
        inner = node.sub.where
        return _literal_weight(inner) if inner is not None else 0
    if isinstance(node, Cmp):
        total = 0
        for operand in (node.left, node.right):
            if isinstance(operand, Lit) and isinstance(operand.value, int):
                total += abs(operand.value)
        return total
    return 0


def _case_size(dbspec: DatabaseSpec, ir: QueryIR) -> tuple[int, int, int]:
    return (dbspec.total_rows(), predicate_size(ir.where),
            _literal_weight(ir.where))


def shrink_case(
    dbspec: DatabaseSpec,
    ir: QueryIR,
    still_fails: Callable[[DatabaseSpec, QueryIR], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> tuple[DatabaseSpec, QueryIR]:
    """Greedily minimize a failing case; returns the smallest found.

    ``still_fails`` must return True exactly when the candidate case
    reproduces the original divergence.  The input case is assumed to
    fail (callers have just observed it failing).
    """
    checks = 0

    def check(candidate_db: DatabaseSpec, candidate_ir: QueryIR) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        try:
            return still_fails(candidate_db, candidate_ir)
        except Exception:
            # A candidate that crashes the harness itself is not a
            # usable reproduction; skip it.
            return False

    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate_db in _row_removal_candidates(dbspec):
            if check(candidate_db, ir):
                dbspec = candidate_db
                improved = True
                break
        for where in _predicate_candidates(ir.where):
            candidate_ir = replace(ir, where=where)
            before = _case_size(dbspec, ir)
            if (_case_size(dbspec, candidate_ir) < before
                    and check(dbspec, candidate_ir)):
                ir = candidate_ir
                improved = True
                break
    return dbspec, ir
