"""Grammar-driven random subquery generation.

Coverage targets, mapped to the paper:

* all six Table-1 subquery forms — scalar-aggregate comparison,
  ``SOME``, ``ALL``, ``EXISTS`` / ``NOT EXISTS``, ``IN`` / ``NOT IN``;
* linear nesting: a subquery whose WHERE itself holds a subquery
  predicate (Theorem 3.2), up to a configurable depth;
* non-neighboring correlation: an inner block referencing an alias two
  or more scopes out (Theorems 3.3/3.4), forcing the translator's
  push-down joins;
* conjunctions and disjunctions of subquery predicates over the *same*
  detail table, the inputs Proposition 4.1's coalescing wants, plus NOT
  so normalization (negation push-down) stays exercised;
* NULL-sensitive dressing: IS NULL leaves, NULL literals in local
  filters, string as well as integer correlation.

All randomness flows through the caller's ``random.Random`` so any case
is reproducible from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fuzz.queries import (
    AggCmp,
    AggSpecIR,
    AndP,
    ColRef,
    Cmp,
    ExistsP,
    InP,
    IsNullP,
    Lit,
    NotP,
    OrP,
    QuantCmp,
    QueryIR,
    Sub,
)

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
_STRING_OPS = ("=", "<>")
_AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")
_FORMS = ("exists", "not_exists", "in", "not_in", "some", "all", "agg")

#: Per-table column roles: (numeric value column, string column or None).
_TABLE_COLUMNS = {
    "B": ("x", "s"),
    "R": ("y", "s"),
    "S": ("z", None),
}
_DETAIL_TABLES = ("R", "S", "B")


@dataclass
class GrammarConfig:
    """Knobs for the query grammar."""

    max_depth: int = 3          # linear-nesting depth bound
    nest_probability: float = 0.35
    non_neighbor_probability: float = 0.3
    value_domain: int = 7

    def __post_init__(self):
        if self.max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1, got {self.max_depth}"
            )


@dataclass(frozen=True)
class _Scope:
    """One enclosing block the subquery can correlate against."""

    alias: str
    table: str


class _QueryBuilder:
    def __init__(self, rng: random.Random, config: GrammarConfig):
        self.rng = rng
        self.config = config
        self.alias_counter = 0

    def fresh_alias(self) -> str:
        self.alias_counter += 1
        return f"r{self.alias_counter}"

    # -- literals and operands ----------------------------------------------

    def int_literal(self) -> Lit:
        return Lit(self.rng.randint(0, self.config.value_domain))

    def string_literal(self) -> Lit:
        from repro.fuzz.datagen import STRING_POOL

        return Lit(self.rng.choice(STRING_POOL))

    def numeric_ref(self, scope: _Scope) -> ColRef:
        column = self.rng.choice(("k", _TABLE_COLUMNS[scope.table][0]))
        return ColRef(scope.alias, column)

    # -- subquery construction ----------------------------------------------

    def correlation(self, alias: str, table: str,
                    scopes: list[_Scope]) -> list:
        """Conjuncts tying the new block to its enclosing scopes."""
        conjuncts = []
        rng = self.rng
        # Neighboring correlation on the shared key: the common case.
        if rng.random() < 0.75:
            conjuncts.append(
                Cmp("=", ColRef(alias, "k"), ColRef(scopes[-1].alias, "k"))
            )
        # Non-neighboring: reference a scope at least two levels out
        # (Theorems 3.3/3.4 — push-down joins in the translation).
        if len(scopes) >= 2 and rng.random() < self.config.non_neighbor_probability:
            outer = rng.choice(scopes[:-1])
            conjuncts.append(
                Cmp(rng.choice(_COMPARISON_OPS),
                    self.numeric_ref(_Scope(alias, table)),
                    self.numeric_ref(outer))
            )
        # String correlation when both blocks carry the string column.
        string_column = _TABLE_COLUMNS[table][1]
        neighbor_string = _TABLE_COLUMNS[scopes[-1].table][1]
        if (string_column and neighbor_string and rng.random() < 0.2):
            conjuncts.append(
                Cmp(rng.choice(_STRING_OPS),
                    ColRef(alias, string_column),
                    ColRef(scopes[-1].alias, neighbor_string))
            )
        # A local filter, occasionally against a NULL literal to keep
        # three-valued comparisons hot.
        if rng.random() < 0.5:
            literal = (Lit(None) if rng.random() < 0.1
                       else self.int_literal())
            conjuncts.append(
                Cmp(rng.choice(_COMPARISON_OPS),
                    self.numeric_ref(_Scope(alias, table)), literal)
            )
        if rng.random() < 0.15:
            conjuncts.append(
                IsNullP(self.numeric_ref(_Scope(alias, table)),
                        negated=rng.random() < 0.5)
            )
        return conjuncts

    def subquery(self, scopes: list[_Scope], depth: int,
                 table: str | None = None) -> Sub:
        rng = self.rng
        table = table or rng.choice(_DETAIL_TABLES)
        alias = self.fresh_alias()
        conjuncts = self.correlation(alias, table, scopes)
        # Linear nesting (Theorem 3.2): the block's WHERE holds a
        # subquery predicate of its own.
        if depth < self.config.max_depth and rng.random() < self.config.nest_probability:
            conjuncts.append(
                self.subquery_leaf(scopes + [_Scope(alias, table)],
                                   depth + 1)
            )
        where = None
        for conjunct in conjuncts:
            where = conjunct if where is None else AndP(where, conjunct)
        return Sub(table, alias, where)

    def subquery_leaf(self, scopes: list[_Scope], depth: int,
                      table: str | None = None):
        """One of the six Table-1 forms."""
        rng = self.rng
        form = rng.choice(_FORMS)
        sub = self.subquery(scopes, depth, table)
        numeric_column = _TABLE_COLUMNS[sub.table][0]
        string_column = _TABLE_COLUMNS[sub.table][1]
        outer = scopes[-1]
        if form == "exists":
            return ExistsP(sub)
        if form == "not_exists":
            return ExistsP(sub, negated=True)
        if form in ("in", "not_in"):
            outer_string = _TABLE_COLUMNS[outer.table][1]
            if (string_column and outer_string and rng.random() < 0.3):
                left = ColRef(outer.alias, outer_string)
                item = string_column
            else:
                left = self.numeric_ref(outer)
                item = rng.choice(("k", numeric_column))
            return InP(left, Sub(sub.table, sub.alias, sub.where, item=item),
                       negated=form == "not_in")
        if form in ("some", "all"):
            item = rng.choice(("k", numeric_column))
            return QuantCmp(
                rng.choice(_COMPARISON_OPS), form, self.numeric_ref(outer),
                Sub(sub.table, sub.alias, sub.where, item=item),
            )
        function = rng.choice(_AGG_FUNCTIONS)
        if function == "count" and rng.random() < 0.4:
            agg = AggSpecIR("count", None)
        else:
            column = rng.choice(("k", numeric_column))
            distinct = (function in ("count", "sum")
                        and rng.random() < 0.25)
            agg = AggSpecIR(function, column, distinct)
        return AggCmp(
            rng.choice(_COMPARISON_OPS), self.numeric_ref(outer),
            Sub(sub.table, sub.alias, sub.where, agg=agg),
        )

    # -- outer predicate -----------------------------------------------------

    def plain_leaf(self, scope: _Scope):
        rng = self.rng
        if rng.random() < 0.3:
            return IsNullP(self.numeric_ref(scope),
                           negated=rng.random() < 0.5)
        return Cmp(rng.choice(_COMPARISON_OPS), self.numeric_ref(scope),
                   self.int_literal())

    def outer_predicate(self, scope: _Scope):
        rng = self.rng
        scopes = [scope]
        shape = rng.choices(
            ("single", "not", "and", "or", "and_same", "or_same"),
            weights=(30, 12, 15, 15, 14, 14),
        )[0]
        first = self.subquery_leaf(scopes, 1)
        if shape == "single":
            return first
        if shape == "not":
            return NotP(first)
        if shape in ("and_same", "or_same"):
            # Both subqueries range over the same detail table — the
            # shape Proposition 4.1's coalescing merges into one GMDJ.
            table = _first_sub_table(first) or rng.choice(_DETAIL_TABLES)
            second = self.subquery_leaf(scopes, 1, table=table)
            combine = AndP if shape == "and_same" else OrP
            return combine(first, second)
        second = (self.subquery_leaf(scopes, 1) if rng.random() < 0.6
                  else self.plain_leaf(scope))
        if rng.random() < 0.2:
            second = NotP(second)
        combine = AndP if shape == "and" else OrP
        return combine(first, second)


def _first_sub_table(node) -> str | None:
    if isinstance(node, (ExistsP, InP, QuantCmp, AggCmp)):
        return node.sub.table
    if isinstance(node, NotP):
        return _first_sub_table(node.operand)
    if isinstance(node, (AndP, OrP)):
        return _first_sub_table(node.left) or _first_sub_table(node.right)
    return None


def random_query(
    rng: random.Random, config: GrammarConfig | None = None
) -> QueryIR:
    """Draw one outer query over table B with a random subquery predicate."""
    config = config or GrammarConfig()
    builder = _QueryBuilder(rng, config)
    scope = _Scope("b", "B")
    predicate = builder.outer_predicate(scope)
    return QueryIR("B", "b", ("k", "x", "s"), predicate)
