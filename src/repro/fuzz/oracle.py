"""The differential oracle: every engine vs. SQLite ground truth.

A *case* is a (database, query) pair.  The oracle runs the query through

* every SQL-capable planner strategy (``naive``, ``native``,
  ``unnest_join``, ``gmdj``, ``gmdj_coalesce``, ``gmdj_completion``,
  ``gmdj_optimized``) and
* the chunked, partitioned, and vectorized GMDJ evaluation modes (with
  deliberately tiny budgets so fragmentation and multi-batch scans
  actually happen on fuzz-sized data), and
* the rollup-warm replay engine (``gmdj_rollup_warm``): the query runs
  cold with the semantic rollup tier on, then warm against the now-
  populated store, then once more under ``gmdj_optimized`` whose
  base-selection pushdown gives the subsumption matcher real work — a
  warm result differing from its cold twin is the classic semantic-
  cache failure mode and is reported with the dedicated divergence
  kind ``"rollup-divergence"``,

and compares each result bag against stdlib ``sqlite3`` executing an
independently rendered query.  Comparison is NULL-aware bag equality
over *normalized* rows, so ``2`` and ``2.0`` agree and float noise below
1e-9 is ignored.

Baselines that legitimately cannot express a query (join unnesting on
disjunctions or non-neighboring correlation raises
:class:`~repro.errors.TranslationError`) are recorded as skips, never as
divergences; any other exception *is* a divergence — the fuzzer treats
crashes as findings.
"""

from __future__ import annotations

import sqlite3
from repro import QueryOptions
from collections import Counter
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.errors import ReproError, TranslationError
from repro.fuzz.datagen import DatabaseSpec
from repro.gmdj.modes import (
    evaluate_plan_chunked,
    evaluate_plan_partitioned,
    evaluate_plan_vectorized,
)
from repro.unnesting.translate import subquery_to_gmdj

#: Planner strategies the oracle drives through the SQL frontend.
STRATEGY_ENGINES = (
    "naive",
    "native",
    "unnest_join",
    "gmdj",
    "gmdj_coalesce",
    "gmdj_completion",
    "gmdj_optimized",
)

#: Evaluation-mode engines (plain translation, fragmented or batched
#: evaluation).  ``gmdj_numpy`` is the vectorized mode on the numpy
#: whole-array backend; it is recorded as a skip when the optional
#: numpy extra is not installed.
MODE_ENGINES = ("gmdj_chunked", "gmdj_parallel", "gmdj_vectorized",
                "gmdj_numpy")

#: Cold-then-warm replay through the semantic rollup store
#: (:mod:`repro.engine.rollup`); divergence kind "rollup-divergence".
ROLLUP_ENGINES = ("gmdj_rollup_warm",)

ALL_ENGINES = STRATEGY_ENGINES + MODE_ENGINES + ROLLUP_ENGINES

#: Tiny fragmentation knobs: fuzz databases hold ~10 rows per table, so
#: these force multiple chunks / partitions / batches on nearly every
#: case.
FUZZ_MEMORY_TUPLES = 2
FUZZ_PARTITIONS = 3
FUZZ_CHUNK_SIZE = 3


@dataclass
class Divergence:
    """One engine disagreeing with the oracle (or blowing up)."""

    engine: str
    kind: str  # "mismatch" | "error" | "lint-error"
    #          | "rollup-divergence" | "certificate-violation"
    detail: str
    expected: list | None = None
    actual: list | None = None

    def to_json(self) -> dict:
        return {
            "engine": self.engine,
            "kind": self.kind,
            "detail": self.detail,
            "expected": self.expected,
            "actual": self.actual,
        }


@dataclass
class CaseOutcome:
    """Result of one differential case across every engine."""

    divergences: list[Divergence] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    engines_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def normalize_value(value):
    """Collapse cross-engine representation differences.

    Booleans become ints (SQLite has no boolean storage class), and
    floats are quantized to 1e-9 — integral floats collapse onto their
    int, so ``2`` vs ``2.0`` never reads as a divergence.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        quantized = round(value, 9)
        return int(quantized) if quantized == int(quantized) else quantized
    return value


def normalize_rows(rows) -> Counter:
    """Rows as a NULL-aware multiset of normalized tuples."""
    return Counter(tuple(normalize_value(v) for v in row) for row in rows)


def _bag_repr(bag: Counter) -> list:
    """A JSON-friendly, deterministic rendering of a row bag."""
    return sorted(
        (list(row) for row in bag.elements()),
        key=lambda row: [(v is not None, str(type(v)), v) for v in row],
    )


def sqlite_oracle_rows(dbspec: DatabaseSpec, sqlite_sql: str) -> Counter:
    """Execute the SQLite rendering against an in-memory ground truth."""
    connection = sqlite3.connect(":memory:")
    try:
        dbspec.to_sqlite(connection)
        rows = connection.execute(sqlite_sql).fetchall()
    finally:
        connection.close()
    return normalize_rows(rows)


def lint_findings(database: Database, repro_sql: str) -> list[tuple[str, object]]:
    """Error-severity lint diagnostics for a query and its translations.

    Statically verifies the bound query tree plus both GMDJ translations
    (plain and optimized).  Returns ``(plan_label, diagnostic)`` pairs —
    an oracle-accepted query must produce none, so the fuzzer reports
    each as a divergence of the pseudo-engine ``"lint"``.
    """
    from repro.lint import lint_plan

    findings: list[tuple[str, object]] = []
    try:
        query = database.sql(repro_sql)
    except ReproError:
        # The frontend rejected the SQL; every engine will report that
        # on its own — there is no plan to verify.
        return findings
    builders = (
        ("query", lambda: query),
        ("gmdj", lambda: subquery_to_gmdj(query, database.catalog)),
        ("gmdj_optimized",
         lambda: subquery_to_gmdj(query, database.catalog, optimize=True)),
    )
    seen: set[tuple[str, str, str]] = set()
    for label, build in builders:
        try:
            plan = build()
        except TranslationError:
            continue
        report = lint_plan(plan, database.catalog, advice=False)
        for diagnostic in report.errors:
            key = (diagnostic.code, diagnostic.path, diagnostic.message)
            if key in seen:
                continue
            seen.add(key)
            findings.append((label, diagnostic))
    return findings


def capability_violations(database: Database, repro_sql: str) -> list[str]:
    """Cross-check capability certificates against actual evaluation.

    Both GMDJ translations of the query are certified
    (:func:`repro.lint.absint.certify_capabilities`) and evaluated —
    once on the row kernel and once on the vectorized kernel, the
    latter under the certificate's ambient scope so the mask-skip path
    runs with the certificate it trusts — and the observed rows are
    checked against the certified per-column nullability.  Returns
    human-readable violation strings; the certificate's soundness
    contract is that this list is empty for every oracle-accepted
    query, so the fuzzer reports each entry as a divergence of the
    pseudo-engine ``"capability"``.
    """
    from repro.errors import CertificateViolation
    from repro.lint.absint import capability_scope, certify_capabilities
    from repro.obs.invariants import check_capabilities
    from repro.storage.npcolumns import HAVE_NUMPY

    try:
        query = database.sql(repro_sql)
    except ReproError:
        return []
    problems: list[str] = []
    builders = (
        ("gmdj", lambda: subquery_to_gmdj(query, database.catalog)),
        ("gmdj_optimized",
         lambda: subquery_to_gmdj(query, database.catalog, optimize=True)),
    )
    for label, build in builders:
        try:
            plan = build()
        except TranslationError:
            continue
        certificate = certify_capabilities(plan, database.catalog)
        runs = [
            (label, lambda: plan.evaluate(database.catalog)),
            (f"{label}/vectorized",
             lambda: evaluate_plan_vectorized(
                 plan, database.catalog, FUZZ_CHUNK_SIZE)),
        ]
        if HAVE_NUMPY:
            # The whole-array backend trusts the same certificate for
            # its mask-free encodings; it must uphold it too.
            runs.append((f"{label}/numpy",
                         lambda: evaluate_plan_vectorized(
                             plan, database.catalog, FUZZ_CHUNK_SIZE,
                             backend="numpy")))
        for run_label, run in runs:
            try:
                with capability_scope(certificate):
                    rows = run().rows
            except CertificateViolation as error:
                problems.append(f"{run_label}: {error}")
                continue
            except Exception:
                # Engine failures are the engine loop's findings, not
                # certificate unsoundness.
                continue
            report = check_capabilities(rows, certificate)
            problems.extend(
                f"{run_label}: {violation}"
                for violation in report.violations
            )
    return problems


def _rollup_warm_divergence(
    database: Database, repro_sql: str, expected: Counter,
) -> Divergence | None:
    """Cold/warm/optimized-warm replay through the rollup store.

    Three runs against the case database: cold under ``gmdj`` with the
    rollup tier on (this populates the store), warm with the same
    options (exact-tier serving), and once under ``gmdj_optimized``
    whose pushed-down base selections exercise subsumption matching.
    A warm result differing from its cold twin — or from the SQLite
    oracle — is a stale/unsound cache hit, the failure class this
    engine exists to catch.
    """
    cold_options = QueryOptions(
        strategy="gmdj", rollup="subsume", use_cache=False,
    )
    optimized_options = QueryOptions(
        strategy="gmdj_optimized", rollup="subsume", use_cache=False,
    )
    cold = normalize_rows(
        database.execute_sql(repro_sql, cold_options).rows)
    warm = normalize_rows(
        database.execute_sql(repro_sql, cold_options).rows)
    optimized = normalize_rows(
        database.execute_sql(repro_sql, optimized_options).rows)
    if cold != expected:
        missing = expected - cold
        extra = cold - expected
        return Divergence(
            engine="gmdj_rollup_warm", kind="mismatch",
            detail=(f"cold run: {sum(missing.values())} row(s) missing, "
                    f"{sum(extra.values())} unexpected"),
            expected=_bag_repr(expected), actual=_bag_repr(cold),
        )
    if warm != cold:
        return Divergence(
            engine="gmdj_rollup_warm", kind="rollup-divergence",
            detail="warm replay diverged from its own cold evaluation",
            expected=_bag_repr(cold), actual=_bag_repr(warm),
        )
    if optimized != expected:
        return Divergence(
            engine="gmdj_rollup_warm", kind="rollup-divergence",
            detail=("rollup-warm gmdj_optimized run diverged from the "
                    "oracle"),
            expected=_bag_repr(expected), actual=_bag_repr(optimized),
        )
    return None


def run_differential(
    dbspec: DatabaseSpec,
    repro_sql: str,
    sqlite_sql: str,
    engines=ALL_ENGINES,
) -> CaseOutcome:
    """Run one case through every engine and diff against SQLite.

    Besides executing, the case is *statically verified*: the linter
    (:mod:`repro.lint`) runs over the query and its GMDJ translations,
    and any error-severity diagnostic is reported as a divergence of the
    pseudo-engine ``"lint"`` — the linter's soundness contract is that
    it never fires at error severity on an oracle-accepted query.
    """
    expected = sqlite_oracle_rows(dbspec, sqlite_sql)
    outcome = CaseOutcome()
    database = Database()
    for name, table_spec in dbspec.tables.items():
        database.create_table(name, list(table_spec.columns), table_spec.rows)
    try:
        for label, diagnostic in lint_findings(database, repro_sql):
            outcome.divergences.append(Divergence(
                engine="lint", kind="lint-error",
                detail=f"{label}: {diagnostic.render()}",
            ))
    except Exception as error:  # the linter itself must never crash
        outcome.divergences.append(Divergence(
            engine="lint", kind="lint-error",
            detail=f"linter crashed: {type(error).__name__}: {error}",
        ))
    try:
        for problem in capability_violations(database, repro_sql):
            outcome.divergences.append(Divergence(
                engine="capability", kind="certificate-violation",
                detail=problem,
            ))
    except Exception as error:  # nor must the certifier
        outcome.divergences.append(Divergence(
            engine="capability", kind="certificate-violation",
            detail=f"certifier crashed: {type(error).__name__}: {error}",
        ))
    for engine in engines:
        try:
            if engine in ROLLUP_ENGINES:
                divergence = _rollup_warm_divergence(
                    database, repro_sql, expected)
                outcome.engines_run += 1
                if divergence is not None:
                    outcome.divergences.append(divergence)
                continue
            if engine in MODE_ENGINES:
                plan = subquery_to_gmdj(database.sql(repro_sql),
                                        database.catalog)
                if engine == "gmdj_chunked":
                    result = evaluate_plan_chunked(
                        plan, database.catalog, FUZZ_MEMORY_TUPLES)
                elif engine == "gmdj_vectorized":
                    result = evaluate_plan_vectorized(
                        plan, database.catalog, FUZZ_CHUNK_SIZE)
                elif engine == "gmdj_numpy":
                    from repro.storage.npcolumns import HAVE_NUMPY

                    if not HAVE_NUMPY:
                        outcome.skipped.append(engine)
                        continue
                    result = evaluate_plan_vectorized(
                        plan, database.catalog, FUZZ_CHUNK_SIZE,
                        backend="numpy")
                else:
                    result = evaluate_plan_partitioned(
                        plan, database.catalog, FUZZ_PARTITIONS)
            else:
                result = database.execute_sql(repro_sql, QueryOptions(engine))
        except TranslationError:
            outcome.skipped.append(engine)
            continue
        except (Exception, RecursionError) as error:
            outcome.engines_run += 1
            outcome.divergences.append(Divergence(
                engine=engine, kind="error",
                detail=f"{type(error).__name__}: {error}",
            ))
            continue
        outcome.engines_run += 1
        actual = normalize_rows(result.rows)
        if actual != expected:
            missing = expected - actual
            extra = actual - expected
            outcome.divergences.append(Divergence(
                engine=engine, kind="mismatch",
                detail=(f"{sum(missing.values())} row(s) missing, "
                        f"{sum(extra.values())} unexpected"),
                expected=_bag_repr(expected),
                actual=_bag_repr(actual),
            ))
    return outcome
