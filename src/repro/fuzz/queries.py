"""Query IR for the fuzzer, with renderers for repro SQL and SQLite SQL.

The fuzzer does not generate SQL text directly: it generates a small
intermediate representation of "outer block + predicate tree whose leaves
may be subqueries" and renders it twice —

* :func:`render_repro_sql` — the dialect of :mod:`repro.sql` (which
  supports ``SOME``/``ALL`` quantified comparisons natively);
* :func:`render_sqlite_sql` — standard SQLite.  SQLite has no quantified
  comparisons, so ``x op SOME/ALL (...)`` is encoded as a three-valued
  ``CASE WHEN EXISTS ... THEN 1/0/NULL`` expression taken straight from
  the quantifier's definition.  Crucially this encoding is *not* the
  paper's counting rewrite: the oracle must not share the machinery under
  test, or a rewrite bug would cancel out in the comparison.

Every composite is fully parenthesized so the two dialects agree on
structure regardless of precedence rules.
"""

from __future__ import annotations

from dataclasses import dataclass


# -- scalar operands ---------------------------------------------------------

@dataclass(frozen=True)
class Lit:
    """An integer, string, or NULL literal."""

    value: object  # int | str | None


@dataclass(frozen=True)
class ColRef:
    """A qualified column reference ``alias.name``."""

    alias: str
    name: str


# -- predicate nodes ---------------------------------------------------------

@dataclass(frozen=True)
class Cmp:
    """A plain comparison between two scalar operands."""

    op: str  # = <> < <= > >=
    left: object
    right: object


@dataclass(frozen=True)
class IsNullP:
    operand: ColRef
    negated: bool = False


@dataclass(frozen=True)
class ExistsP:
    sub: "Sub"
    negated: bool = False


@dataclass(frozen=True)
class InP:
    left: object
    sub: "Sub"
    negated: bool = False


@dataclass(frozen=True)
class QuantCmp:
    """``left op SOME/ALL (SELECT item FROM ...)``."""

    op: str
    quantifier: str  # "some" | "all"
    left: object
    sub: "Sub"


@dataclass(frozen=True)
class AggCmp:
    """``left op (SELECT agg(...) FROM ...)`` — always single-row."""

    op: str
    left: object
    sub: "Sub"


@dataclass(frozen=True)
class AndP:
    left: object
    right: object


@dataclass(frozen=True)
class OrP:
    left: object
    right: object


@dataclass(frozen=True)
class NotP:
    operand: object


@dataclass(frozen=True)
class AggSpecIR:
    """The aggregate of an :class:`AggCmp` subquery."""

    func: str  # count | sum | avg | min | max
    column: str | None  # None => count(*)
    distinct: bool = False


@dataclass(frozen=True)
class Sub:
    """One subquery block: table, alias, optional WHERE, and its role.

    ``item`` names the column produced for IN / quantified comparisons;
    ``agg`` holds the aggregate for scalar comparisons; EXISTS subqueries
    carry neither and render as ``SELECT *``.
    """

    table: str
    alias: str
    where: object | None = None
    item: str | None = None
    agg: AggSpecIR | None = None


@dataclass(frozen=True)
class QueryIR:
    """The outer block: ``SELECT columns FROM table alias WHERE where``."""

    table: str
    alias: str
    columns: tuple[str, ...]
    where: object


#: Predicate leaves that contain a subquery.
SUBQUERY_LEAVES = (ExistsP, InP, QuantCmp, AggCmp)


def predicate_size(node) -> int:
    """Node count of a predicate tree — the shrinker's progress metric."""
    if isinstance(node, (AndP, OrP)):
        return 1 + predicate_size(node.left) + predicate_size(node.right)
    if isinstance(node, NotP):
        return 1 + predicate_size(node.operand)
    if isinstance(node, (ExistsP, InP, QuantCmp, AggCmp)):
        inner = node.sub.where
        return 2 + (predicate_size(inner) if inner is not None else 0)
    return 1


# -- shared rendering helpers ------------------------------------------------

def _render_operand(operand) -> str:
    if isinstance(operand, ColRef):
        return f"{operand.alias}.{operand.name}"
    if isinstance(operand, Lit):
        value = operand.value
        if value is None:
            return "NULL"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return str(value)
    raise TypeError(f"not a scalar operand: {operand!r}")


def _agg_text(agg: AggSpecIR, alias: str) -> str:
    if agg.column is None:
        return "count(*)"
    prefix = "DISTINCT " if agg.distinct else ""
    return f"{agg.func}({prefix}{alias}.{agg.column})"


class _Renderer:
    """Common recursive renderer; subclasses override the quantifier."""

    def query(self, ir: QueryIR) -> str:
        select = ", ".join(f"{ir.alias}.{c}" for c in ir.columns)
        return (
            f"SELECT {select} FROM {ir.table} {ir.alias} "
            f"WHERE {self.predicate(ir.where)}"
        )

    def predicate(self, node) -> str:
        if isinstance(node, AndP):
            return f"({self.predicate(node.left)} AND {self.predicate(node.right)})"
        if isinstance(node, OrP):
            return f"({self.predicate(node.left)} OR {self.predicate(node.right)})"
        if isinstance(node, NotP):
            return f"(NOT {self.predicate(node.operand)})"
        if isinstance(node, Cmp):
            return (
                f"({_render_operand(node.left)} {node.op} "
                f"{_render_operand(node.right)})"
            )
        if isinstance(node, IsNullP):
            maybe_not = "NOT " if node.negated else ""
            return f"({_render_operand(node.operand)} IS {maybe_not}NULL)"
        if isinstance(node, ExistsP):
            maybe_not = "NOT " if node.negated else ""
            return f"({maybe_not}EXISTS ({self._sub_select('*', node.sub)}))"
        if isinstance(node, InP):
            maybe_not = "NOT " if node.negated else ""
            item = f"{node.sub.alias}.{node.sub.item}"
            return (
                f"({_render_operand(node.left)} {maybe_not}IN "
                f"({self._sub_select(item, node.sub)}))"
            )
        if isinstance(node, AggCmp):
            agg = _agg_text(node.sub.agg, node.sub.alias)
            return (
                f"({_render_operand(node.left)} {node.op} "
                f"({self._sub_select(agg, node.sub)}))"
            )
        if isinstance(node, QuantCmp):
            return self.quantified(node)
        raise TypeError(f"not a predicate node: {node!r}")

    def _sub_select(self, select_list: str, sub: Sub) -> str:
        text = f"SELECT {select_list} FROM {sub.table} {sub.alias}"
        if sub.where is not None:
            text += f" WHERE {self.predicate(sub.where)}"
        return text

    def quantified(self, node: QuantCmp) -> str:
        raise NotImplementedError


class _ReproRenderer(_Renderer):
    def quantified(self, node: QuantCmp) -> str:
        item = f"{node.sub.alias}.{node.sub.item}"
        keyword = node.quantifier.upper()
        return (
            f"({_render_operand(node.left)} {node.op} {keyword} "
            f"({self._sub_select(item, node.sub)}))"
        )


class _SQLiteRenderer(_Renderer):
    def quantified(self, node: QuantCmp) -> str:
        """Three-valued CASE encoding of a quantified comparison.

        ``x op SOME S`` is TRUE iff some element compares true, FALSE iff
        every element compares false, else UNKNOWN; dually for ALL.  The
        subquery is duplicated into two EXISTS probes (one for a deciding
        element, one for an UNKNOWN comparison), which SQLite evaluates
        with its own 3VL machinery.
        """
        left = _render_operand(node.left)
        item = f"{node.sub.alias}.{node.sub.item}"
        compare = f"({left} {node.op} {item})"
        if node.quantifier == "some":
            deciding, on_deciding, otherwise = compare, "1", "0"
        else:
            deciding, on_deciding, otherwise = f"(NOT {compare})", "0", "1"
        probe_true = self._sub_with_extra(node.sub, deciding)
        probe_null = self._sub_with_extra(node.sub, f"({compare} IS NULL)")
        return (
            f"(CASE WHEN EXISTS ({probe_true}) THEN {on_deciding} "
            f"WHEN EXISTS ({probe_null}) THEN NULL "
            f"ELSE {otherwise} END)"
        )

    def _sub_with_extra(self, sub: Sub, extra: str) -> str:
        text = f"SELECT 1 FROM {sub.table} {sub.alias} WHERE "
        if sub.where is not None:
            text += f"({self.predicate(sub.where)}) AND "
        return text + extra


def render_repro_sql(ir: QueryIR) -> str:
    """Render the IR in the dialect of :mod:`repro.sql`."""
    return _ReproRenderer().query(ir)


def render_sqlite_sql(ir: QueryIR) -> str:
    """Render the IR as SQLite SQL (quantifiers become CASE/EXISTS)."""
    return _SQLiteRenderer().query(ir)
