"""Random NULL-heavy databases for differential fuzzing.

The fixed three-table layout mirrors the shapes the paper's rewrites
care about — an outer (base-values) table and two candidate detail
tables, one sharing a string attribute for non-numeric predicates:

* ``B(k INTEGER, x INTEGER, s STRING)`` — the outer block's table;
* ``R(k INTEGER, y INTEGER, s STRING)`` — the usual detail table;
* ``S(k INTEGER, z INTEGER)``          — a second detail table so linear
  nesting can hop across tables.

What varies per case is the *data*: row counts, NULL density, key skew,
and duplicate rate are all drawn from the per-case RNG, because the
interesting rewrite bugs live exactly in empty groups, all-NULL groups,
and duplicated tuples (bag semantics).
"""

from __future__ import annotations

import random
import sqlite3
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.types import DataType

#: SQLite column affinity per engine type.
_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOLEAN: "INTEGER",
}

#: Tiny string pool — collisions (and therefore duplicates and matching
#: correlations) must be common for the fuzz to bite.
STRING_POOL = ("a", "b", "c", "d")


@dataclass
class TableSpec:
    """One table: typed columns plus plain-Python rows."""

    name: str
    columns: tuple[tuple[str, DataType], ...]
    rows: list[tuple]

    def to_json(self) -> dict:
        return {
            "columns": [[name, dtype.value] for name, dtype in self.columns],
            "rows": [list(row) for row in self.rows],
        }

    @staticmethod
    def from_json(name: str, data: dict) -> "TableSpec":
        columns = tuple(
            (col_name, DataType(type_name))
            for col_name, type_name in data["columns"]
        )
        return TableSpec(name, columns, [tuple(row) for row in data["rows"]])


@dataclass
class DatabaseSpec:
    """A full database instance, portable between repro and sqlite3."""

    tables: dict[str, TableSpec]

    def build_catalog(self) -> Catalog:
        catalog = Catalog()
        for spec in self.tables.values():
            catalog.create_table(
                spec.name,
                Relation.from_columns(list(spec.columns), spec.rows,
                                      name=spec.name),
            )
        return catalog

    def to_sqlite(self, connection: sqlite3.Connection) -> None:
        cursor = connection.cursor()
        for spec in self.tables.values():
            column_ddl = ", ".join(
                f"{name} {_SQLITE_TYPES[dtype]}" for name, dtype in spec.columns
            )
            cursor.execute(f"CREATE TABLE {spec.name} ({column_ddl})")
            if spec.rows:
                placeholders = ", ".join("?" for _ in spec.columns)
                cursor.executemany(
                    f"INSERT INTO {spec.name} VALUES ({placeholders})",
                    spec.rows,
                )
        connection.commit()

    def total_rows(self) -> int:
        return sum(len(spec.rows) for spec in self.tables.values())

    def to_json(self) -> dict:
        return {name: spec.to_json() for name, spec in self.tables.items()}

    @staticmethod
    def from_json(data: dict) -> "DatabaseSpec":
        return DatabaseSpec({
            name: TableSpec.from_json(name, table_data)
            for name, table_data in data.items()
        })


def _skewed_key(rng: random.Random, domain: int) -> int:
    """Zipf-flavoured key draw: key ``i`` has weight ``1/(i+1)``."""
    weights = [1.0 / (i + 1) for i in range(domain)]
    return rng.choices(range(domain), weights=weights)[0]


def _maybe_null(rng: random.Random, value, null_rate: float):
    return None if rng.random() < null_rate else value


def _random_rows(
    rng: random.Random,
    make_row,
    max_rows: int,
    duplicate_rate: float,
) -> list[tuple]:
    rows: list[tuple] = []
    for _ in range(rng.randint(0, max_rows)):
        if rows and rng.random() < duplicate_rate:
            rows.append(rng.choice(rows))  # exact duplicate: bag semantics
        else:
            rows.append(make_row())
    return rows


def random_database(
    rng: random.Random,
    max_rows: int = 10,
    null_rate: float | None = None,
    key_domain: int | None = None,
    duplicate_rate: float | None = None,
) -> DatabaseSpec:
    """Draw a B/R/S instance; unset knobs are themselves randomized."""
    if max_rows < 0:
        raise ConfigurationError(f"max_rows must be >= 0, got {max_rows}")
    if null_rate is None:
        null_rate = rng.choice([0.0, 0.1, 0.25, 0.4])
    if key_domain is None:
        key_domain = rng.choice([2, 3, 5])
    if duplicate_rate is None:
        duplicate_rate = rng.choice([0.0, 0.2, 0.4])
    value_domain = 7

    def base_row():
        return (
            _maybe_null(rng, _skewed_key(rng, key_domain), null_rate),
            _maybe_null(rng, rng.randint(0, value_domain), null_rate),
            _maybe_null(rng, rng.choice(STRING_POOL), null_rate),
        )

    def detail_row():
        return base_row()

    def second_detail_row():
        return (
            _maybe_null(rng, _skewed_key(rng, key_domain), null_rate),
            _maybe_null(rng, rng.randint(0, value_domain), null_rate),
        )

    integer = DataType.INTEGER
    string = DataType.STRING
    return DatabaseSpec({
        "B": TableSpec(
            "B", (("k", integer), ("x", integer), ("s", string)),
            _random_rows(rng, base_row, max_rows, duplicate_rate),
        ),
        "R": TableSpec(
            "R", (("k", integer), ("y", integer), ("s", string)),
            _random_rows(rng, detail_row, max_rows, duplicate_rate),
        ),
        "S": TableSpec(
            "S", (("k", integer), ("z", integer)),
            _random_rows(rng, second_detail_row, max_rows, duplicate_rate),
        ),
    })
