"""Fuzz campaigns: generate → differentiate → shrink → persist.

A campaign is fully determined by its seed: iteration *i* derives its
own ``random.Random`` from ``(seed, i)``, so any failing iteration can
be regenerated in isolation.  Failing cases are shrunk and written as
self-contained JSON counterexamples::

    {
      "description": "...",
      "seed": 42, "iteration": 17,
      "sql": "SELECT b.k, ... ",          # repro dialect
      "sqlite_sql": "SELECT b.k, ... ",   # oracle dialect
      "tables": {"B": {"columns": [["k", "integer"], ...], "rows": [...]}},
      "divergences": [{"engine": "...", "kind": "...", "detail": "..."}]
    }

The same format is the regression corpus under ``tests/corpus/``:
:func:`replay_case` rebuilds the database, reruns every engine, and
returns the fresh :class:`~repro.fuzz.oracle.CaseOutcome`, which the
pytest replay test asserts clean.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.fuzz.datagen import DatabaseSpec, random_database
from repro.fuzz.generator import GrammarConfig, random_query
from repro.fuzz.oracle import ALL_ENGINES, CaseOutcome, run_differential
from repro.fuzz.queries import QueryIR, render_repro_sql, render_sqlite_sql
from repro.fuzz.shrinker import shrink_case


@dataclass
class FuzzConfig:
    """Campaign parameters.  Everything downstream is derived from them."""

    seed: int = 0
    iterations: int = 100
    max_rows: int = 10
    shrink: bool = True
    grammar: GrammarConfig = field(default_factory=GrammarConfig)
    engines: tuple[str, ...] = ALL_ENGINES

    def __post_init__(self):
        if self.iterations < 0:
            raise ConfigurationError(
                f"iterations must be >= 0, got {self.iterations}"
            )
        if self.max_rows < 0:
            raise ConfigurationError(
                f"max_rows must be >= 0, got {self.max_rows}"
            )
        unknown = set(self.engines) - set(ALL_ENGINES)
        if unknown:
            raise ConfigurationError(
                f"unknown engines {sorted(unknown)}; "
                f"choose from {list(ALL_ENGINES)}"
            )


@dataclass
class Counterexample:
    """A (shrunk) failing case, ready for the regression corpus."""

    seed: int
    iteration: int
    sql: str
    sqlite_sql: str
    dbspec: DatabaseSpec
    outcome: CaseOutcome
    description: str = ""

    def to_json(self) -> dict:
        return {
            "description": self.description or (
                f"fuzz divergence (seed={self.seed}, "
                f"iteration={self.iteration})"
            ),
            "seed": self.seed,
            "iteration": self.iteration,
            "sql": self.sql,
            "sqlite_sql": self.sqlite_sql,
            "tables": self.dbspec.to_json(),
            "divergences": [d.to_json() for d in self.outcome.divergences],
        }


@dataclass
class FuzzReport:
    """What a campaign did: volume, skips, and any counterexamples."""

    config: FuzzConfig
    iterations_run: int = 0
    engines_run: int = 0
    skips: int = 0
    certificate_violations: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        status = ("OK" if self.ok
                  else f"{len(self.counterexamples)} DIVERGENCE(S)")
        return (
            f"fuzz: {self.iterations_run} iteration(s), "
            f"{self.engines_run} engine run(s), {self.skips} skip(s), "
            f"{self.certificate_violations} certificate violation(s), "
            f"{self.elapsed_seconds:.1f}s — {status}"
        )


def _iteration_rng(seed: int, iteration: int) -> random.Random:
    # A distinct, deterministic stream per iteration so one failing
    # iteration can be regenerated without replaying the whole campaign.
    return random.Random(seed * 1_000_003 + iteration)


def generate_case(
    config: FuzzConfig, iteration: int
) -> tuple[DatabaseSpec, QueryIR]:
    """Regenerate iteration ``iteration`` of a campaign, standalone."""
    rng = _iteration_rng(config.seed, iteration)
    dbspec = random_database(rng, max_rows=config.max_rows)
    ir = random_query(rng, config.grammar)
    return dbspec, ir


def _run_ir_case(
    dbspec: DatabaseSpec, ir: QueryIR, engines
) -> CaseOutcome:
    return run_differential(
        dbspec, render_repro_sql(ir), render_sqlite_sql(ir), engines,
    )


def run_fuzz(config: FuzzConfig, log=None) -> FuzzReport:
    """Run a campaign; returns the report (never raises on divergence)."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    report = FuzzReport(config=config)
    started = time.perf_counter()
    for iteration in range(config.iterations):
        case_started = time.perf_counter()
        dbspec, ir = generate_case(config, iteration)
        outcome = _run_ir_case(dbspec, ir, config.engines)
        report.iterations_run += 1
        report.engines_run += outcome.engines_run
        report.skips += len(outcome.skipped)
        registry.counter("fuzz.iterations").inc()
        registry.counter("fuzz.engine_runs").inc(outcome.engines_run)
        registry.counter("fuzz.skips").inc(len(outcome.skipped))
        registry.histogram("fuzz.case_ms").observe(
            (time.perf_counter() - case_started) * 1000
        )
        if outcome.ok:
            continue
        registry.counter("fuzz.divergences").inc(len(outcome.divergences))
        certified = sum(
            1 for d in outcome.divergences
            if d.kind == "certificate-violation"
        )
        if certified:
            report.certificate_violations += certified
            registry.counter("fuzz.certificate_violations").inc(certified)
        if log:
            log(f"iteration {iteration}: "
                f"{len(outcome.divergences)} divergence(s), shrinking...")
        if config.shrink:
            failing_engines = {d.engine for d in outcome.divergences}

            def still_fails(candidate_db, candidate_ir):
                candidate = _run_ir_case(candidate_db, candidate_ir,
                                         config.engines)
                return bool(
                    failing_engines
                    & {d.engine for d in candidate.divergences}
                )

            dbspec, ir = shrink_case(dbspec, ir, still_fails)
            outcome = _run_ir_case(dbspec, ir, config.engines)
        report.counterexamples.append(Counterexample(
            seed=config.seed,
            iteration=iteration,
            sql=render_repro_sql(ir),
            sqlite_sql=render_sqlite_sql(ir),
            dbspec=dbspec,
            outcome=outcome,
        ))
    report.elapsed_seconds = time.perf_counter() - started
    return report


# -- corpus persistence ------------------------------------------------------

def save_counterexample(directory: Path, case: Counterexample) -> Path:
    """Write one counterexample JSON; returns the created path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"seed{case.seed}_iter{case.iteration}.json"
    path.write_text(json.dumps(case.to_json(), indent=2) + "\n")
    return path


def load_corpus(directory: Path) -> list[tuple[Path, dict]]:
    """All ``*.json`` cases in a corpus directory, sorted by name."""
    return [
        (path, json.loads(path.read_text()))
        for path in sorted(Path(directory).glob("*.json"))
    ]


def replay_case(data: dict, engines=ALL_ENGINES) -> CaseOutcome:
    """Re-run a persisted case through every engine vs. the oracle."""
    dbspec = DatabaseSpec.from_json(data["tables"])
    return run_differential(
        dbspec, data["sql"], data["sqlite_sql"], engines,
    )
