"""Relations: ordered multisets of typed tuples.

A :class:`Relation` couples a :class:`~repro.storage.schema.Schema` with a
list of rows (plain Python tuples).  SQL bag semantics apply throughout —
duplicates are preserved and ``distinct()`` is explicit.  SQL NULL is the
Python value ``None``.

Scanning a relation through :meth:`Relation.scan` reports page and tuple
counts into the ambient :class:`~repro.storage.iostats.IOStats`; iteration
via ``__iter__`` is free and intended for cheap in-memory inspection (tests,
pretty-printing).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.iostats import IOStats
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

Row = tuple


class Relation:
    """A typed, ordered multiset of tuples."""

    __slots__ = ("schema", "rows", "name", "_columnar")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Sequence[Any]] = (),
        name: str | None = None,
        validate: bool = True,
    ):
        self.schema = schema
        self.name = name
        if validate:
            self.rows: list[Row] = [self._check_row(row) for row in rows]
        else:
            self.rows = [tuple(row) for row in rows]
        # Columnar-encoding cache (repro.storage.columnar.cached_columnar),
        # keyed by NEVER-null position set.  Scan views share this dict so
        # repeated vectorized queries hit one encoding; mutations clear it.
        self._columnar: dict = {}

    def __getstate__(self) -> tuple:
        # Worker-pool pickling: ship data, not the encoding cache.
        return (self.schema, self.rows, self.name)

    def __setstate__(self, state: tuple) -> None:
        self.schema, self.rows, self.name = state
        self._columnar = {}

    def _check_row(self, row: Sequence[Any]) -> Row:
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self.schema)}: {row!r}"
            )
        return tuple(
            field.dtype.validate(value)
            for field, value in zip(self.schema.fields, row)
        )

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def from_columns(
        pairs: Sequence[tuple[str, DataType]],
        rows: Iterable[Sequence[Any]] = (),
        name: str | None = None,
        qualifier: str | None = None,
    ) -> "Relation":
        """Build a relation from ``(name, dtype)`` pairs and row data."""
        schema = Schema(Field(n, t, qualifier) for n, t in pairs)
        return Relation(schema, rows, name=name)

    def copy(self) -> "Relation":
        """An independent snapshot: same schema/name, fresh row list.

        Rows are immutable tuples, so a shallow list copy is a full
        defensive copy — mutating the copy's ``rows`` cannot affect the
        original (the cache layers rely on this both when storing and
        when serving).
        """
        return Relation(self.schema, self.rows, name=self.name, validate=False)

    def insert(self, row: Sequence[Any]) -> None:
        self.rows.append(self._check_row(row))
        if self._columnar:
            self._columnar.clear()

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # -- basic properties ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        label = self.name or "relation"
        return f"<Relation {label} {len(self.schema)} cols x {len(self.rows)} rows>"

    def arity(self) -> int:
        return len(self.schema)

    # -- accounted access ----------------------------------------------------

    def scan(self) -> Iterator[Row]:
        """Iterate all rows, charging a full relation scan to IOStats."""
        IOStats.ambient().record_scan(len(self.rows))
        return iter(self.rows)

    # -- bag comparisons -----------------------------------------------------

    def as_multiset(self) -> Counter:
        """Rows as a Counter, for order-insensitive bag comparison."""
        return Counter(self.rows)

    def bag_equal(self, other: "Relation") -> bool:
        """True when both relations hold the same multiset of rows.

        Schemas are compared by attribute *names only* (qualifiers and
        declared types may legitimately differ between two plans computing
        the same query).
        """
        if len(self.schema) != len(other.schema):
            return False
        return self.as_multiset() == other.as_multiset()

    # -- convenience transforms (used by tests and examples) ------------------

    def rename(self, qualifier: str) -> "Relation":
        """A view of this relation with every field re-qualified."""
        out = Relation(self.schema.rename(qualifier), self.rows, name=self.name,
                       validate=False)
        out._columnar = self._columnar  # views share the encoding cache
        return out

    def distinct(self) -> "Relation":
        seen: set[Row] = set()
        out: list[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.schema, out, name=self.name, validate=False)

    def sorted_by(self, *references: str) -> "Relation":
        """Rows ordered by the given attributes (NULLs first)."""
        indexes = [self.schema.index_of(ref) for ref in references]

        def key(row: Row):
            return tuple(
                (row[i] is not None, row[i]) for i in indexes
            )

        return Relation(self.schema, sorted(self.rows, key=key),
                        name=self.name, validate=False)

    def column(self, reference: str) -> list[Any]:
        """All values of one attribute, in row order."""
        index = self.schema.index_of(reference)
        return [row[index] for row in self.rows]

    def filter_rows(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Plain-Python row filter (testing helper, not an operator)."""
        return Relation(self.schema, [r for r in self.rows if predicate(r)],
                        name=self.name, validate=False)

    # -- display ---------------------------------------------------------------

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width textual rendering of the first ``limit`` rows."""
        headers = [f.full_name for f in self.schema.fields]
        shown = self.rows[:limit]
        cells = [[("NULL" if v is None else str(v)) for v in row] for row in shown]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells), 1)
            if cells else len(headers[i])
            for i in range(len(headers))
        ]
        def fmt(values: Sequence[str]) -> str:
            return " | ".join(v.ljust(w) for v, w in zip(values, widths))

        lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in cells)
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
