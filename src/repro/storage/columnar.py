"""Column-major relation storage for batch execution.

A :class:`ColumnarRelation` holds the same bag of tuples as a
:class:`~repro.storage.relation.Relation`, transposed into per-attribute
columns with compact typed storage:

* ``INTEGER`` → ``array('q')`` (falls back to a plain object list when a
  Python int overflows 64 bits — SQL semantics keep arbitrary precision);
* ``FLOAT``   → ``array('d')``;
* ``BOOLEAN`` → a ``bytearray`` of 0/1;
* ``STRING``  → dictionary encoding: an ``array('i')`` of codes plus the
  list of distinct values (OLAP detail tables repeat their dimension
  strings heavily, so the dictionary is tiny relative to the column).

NULLs are carried out-of-band in a per-column validity ``bytearray``
(1 = present), so the typed arrays never need an in-band sentinel.  The
conversion is lossless in both directions: ``to_relation`` reproduces the
original rows exactly, duplicates and NULLs included, in the same order.

Columns a capability certificate proves NEVER-null
(:func:`repro.lint.absint.certify_capabilities`) skip the validity mask
entirely — :meth:`ColumnarRelation.from_relation` takes the set of such
column positions and encodes them with ``valid=None`` ("all present"),
eliding both the mask allocation and the per-element mask stores.  The
certificate is trusted but verified: a ``None`` encountered while
encoding a NEVER-null column raises
:class:`~repro.errors.CertificateViolation` on the spot.

The batch GMDJ kernels (:mod:`repro.gmdj.vectorized`) do not read the
typed arrays element-wise in their hot loops — they ask for
:meth:`ColumnarRelation.values`, a decoded plain list with ``None`` for
NULL, computed once per column and cached.  That keeps the per-element
access a single list index while the relation itself stays compact.
"""

from __future__ import annotations

from array import array
from typing import Any, Collection, Sequence

from repro.errors import CertificateViolation
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.types import DataType

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: bytearray booleans decode through this table so ``to_relation``
#: restores real ``bool`` objects, not 0/1 ints.
_BOOLS = (False, True)


def _plain_list(data: Any) -> list:
    """Typed storage as a list of plain Python values.

    ``array`` and ndarray expose ``tolist`` (which converts numpy
    scalars to Python ints/floats/bools); ``bytearray`` iterates to
    ints directly.
    """
    tolist = getattr(data, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(data)


class ColumnData:
    """One attribute's values: typed storage plus a validity mask.

    ``valid=None`` means "every value present" — the encoding used for
    columns certified NEVER-null, where the mask would be all ones and
    is not worth materializing.
    """

    __slots__ = ("kind", "data", "valid", "dictionary")

    def __init__(self, kind: str, data: Any, valid: bytearray | None,
                 dictionary: list | None = None) -> None:
        self.kind = kind  # "int" | "float" | "bool" | "dict" | "object"
        self.data = data
        self.valid = valid
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.data)

    @property
    def mask_free(self) -> bool:
        """True when this column was encoded without a validity mask."""
        return self.valid is None

    def null_count(self) -> int:
        if self.valid is None:
            return 0
        return len(self.valid) - sum(self.valid)

    def decode(self) -> list:
        """The column as a plain list with ``None`` for NULL.

        Storage may be an ``array``/``bytearray`` (the encoder's output)
        or an ndarray (memory-mapped binary persistence); ``tolist``
        normalizes either to plain Python values so decoded rows are
        byte-for-byte the same regardless of where the column came from.
        """
        if self.kind == "dict":
            dictionary = self.dictionary or []
            codes = _plain_list(self.data)
            if self.valid is None:
                return [dictionary[code] for code in codes]
            return [dictionary[code] if ok else None
                    for code, ok in zip(codes, self.valid)]
        if self.kind == "bool":
            flags = _plain_list(self.data)
            if self.valid is None:
                return [_BOOLS[value] for value in flags]
            return [_BOOLS[value] if ok else None
                    for value, ok in zip(flags, self.valid)]
        if self.kind == "object":
            return list(self.data)
        values = _plain_list(self.data)
        if self.valid is None:
            return values
        return [value if ok else None
                for value, ok in zip(values, self.valid)]


def _object_column(values: list) -> ColumnData:
    return ColumnData("object", list(values), bytearray(
        0 if v is None else 1 for v in values))


def _encode_column(values: list, dtype: DataType) -> ColumnData:
    """Build typed storage for one column.

    Intermediate relations are constructed with ``validate=False``, so a
    column's *declared* dtype is not a guarantee about the Python types
    actually present (an INTEGER-typed intermediate may carry floats and
    vice versa).  Every value is therefore type-checked during encoding;
    any mismatch falls back to an object column — the round trip must be
    lossless for whatever bag of values the relation really holds.
    """
    n = len(values)
    valid = bytearray(n)
    if dtype is DataType.INTEGER:
        data = array("q", bytes(8 * n))
        for position, value in enumerate(values):
            if value is None:
                continue
            if (type(value) is not int
                    or value < _INT64_MIN or value > _INT64_MAX):
                return _object_column(values)
            data[position] = value
            valid[position] = 1
        return ColumnData("int", data, valid)
    if dtype is DataType.FLOAT:
        data = array("d", bytes(8 * n))
        for position, value in enumerate(values):
            if value is None:
                continue
            if type(value) is not float:
                return _object_column(values)
            data[position] = value
            valid[position] = 1
        return ColumnData("float", data, valid)
    if dtype is DataType.BOOLEAN:
        flags = bytearray(n)
        for position, value in enumerate(values):
            if value is None:
                continue
            if type(value) is not bool:
                return _object_column(values)
            flags[position] = 1 if value else 0
            valid[position] = 1
        return ColumnData("bool", flags, valid)
    if dtype is DataType.STRING:
        codes = array("i", bytes(4 * n))
        dictionary: list = []
        seen: dict[str, int] = {}
        for position, value in enumerate(values):
            if value is None:
                continue
            if type(value) is not str:
                return _object_column(values)
            code = seen.get(value)
            if code is None:
                code = seen[value] = len(dictionary)
                dictionary.append(value)
            codes[position] = code
            valid[position] = 1
        return ColumnData("dict", codes, valid, dictionary)
    return _object_column(values)


def _encode_never_null(
    values: list, dtype: DataType, column: str
) -> ColumnData:
    """Encode a column certified NEVER-null, skipping the validity mask.

    Type checking stays (declared dtypes are not guarantees on
    intermediates — see :func:`_encode_column`), but the mask is never
    allocated and no per-element validity store happens.  Observing a
    ``None`` here means the static analysis was wrong, which is a hard
    :class:`~repro.errors.CertificateViolation`, not a fallback case.
    """
    n = len(values)
    for value in values:
        if value is None:
            raise CertificateViolation(
                f"column {column!r} certified NEVER-null holds a NULL; "
                f"the capability certificate is unsound"
            )
    if dtype is DataType.INTEGER:
        data = array("q", bytes(8 * n))
        for position, value in enumerate(values):
            if (type(value) is not int
                    or value < _INT64_MIN or value > _INT64_MAX):
                return _object_column(values)
            data[position] = value
        return ColumnData("int", data, None)
    if dtype is DataType.FLOAT:
        data = array("d", bytes(8 * n))
        for position, value in enumerate(values):
            if type(value) is not float:
                return _object_column(values)
            data[position] = value
        return ColumnData("float", data, None)
    if dtype is DataType.BOOLEAN:
        flags = bytearray(n)
        for position, value in enumerate(values):
            if type(value) is not bool:
                return _object_column(values)
            flags[position] = 1 if value else 0
        return ColumnData("bool", flags, None)
    if dtype is DataType.STRING:
        codes = array("i", bytes(4 * n))
        dictionary: list = []
        seen: dict[str, int] = {}
        for position, value in enumerate(values):
            if type(value) is not str:
                return _object_column(values)
            code = seen.get(value)
            if code is None:
                code = seen[value] = len(dictionary)
                dictionary.append(value)
            codes[position] = code
        return ColumnData("dict", codes, None, dictionary)
    return _object_column(values)


class ColumnarRelation:
    """A relation transposed into typed columns (see module docstring)."""

    __slots__ = ("schema", "name", "length", "columns", "_decoded",
                 "_np_columns")

    def __init__(self, schema: Schema, columns: list[ColumnData],
                 length: int, name: str | None = None) -> None:
        self.schema = schema
        self.columns = columns
        self.length = length
        self.name = name
        self._decoded: list[list | None] = [None] * len(columns)
        # Lazily-built ndarray views (repro.storage.npcolumns); ``False``
        # marks "not built yet" so a built-but-unsupported column can
        # cache its ``None``.
        self._np_columns: list[Any] = [False] * len(columns)

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_relation(
        cls, relation: Relation,
        never_null: Collection[int] = frozenset(),
    ) -> "ColumnarRelation":
        """Transpose a row-major relation into columnar form.

        ``never_null`` lists column positions a capability certificate
        proves NULL-free; those columns encode mask-free (see
        :func:`_encode_never_null`).
        """
        schema = relation.schema
        rows = relation.rows
        n = len(rows)
        if rows:
            raw_columns: Sequence[Sequence[Any]] = list(zip(*rows))
        else:
            raw_columns = [[] for _ in schema.fields]
        columns = [
            _encode_never_null(list(raw), field.dtype, field.full_name)
            if position in never_null
            else _encode_column(list(raw), field.dtype)
            for position, (raw, field) in enumerate(
                zip(raw_columns, schema.fields))
        ]
        return cls(schema, columns, n,
                   name=getattr(relation, "name", None))

    def mask_free_columns(self) -> int:
        """How many columns were encoded without a validity mask."""
        return sum(1 for column in self.columns if column.mask_free)

    def to_relation(self) -> Relation:
        """Transpose back; reproduces the source rows exactly, in order."""
        decoded = [self.values(i) for i in range(len(self.columns))]
        if decoded:
            rows = list(zip(*decoded)) if self.length else []
        else:
            rows = [() for _ in range(self.length)]
        return Relation(self.schema, rows, name=self.name, validate=False)

    def values(self, position: int) -> list:
        """Decoded value list of column ``position`` (cached)."""
        cached = self._decoded[position]
        if cached is None:
            cached = self._decoded[position] = self.columns[position].decode()
        return cached

    def value_columns(self) -> tuple[list, ...]:
        """Every column decoded, in schema order (the kernels' input)."""
        return tuple(self.values(i) for i in range(len(self.columns)))

    def row(self, position: int) -> tuple:
        """Materialize one row (mostly for tests and debugging)."""
        return tuple(self.values(i)[position]
                     for i in range(len(self.columns)))


def cached_columnar(
    relation: Relation, never_null: Collection[int] = frozenset(),
) -> ColumnarRelation:
    """The columnar encoding of ``relation``, cached on the relation.

    Repeated vectorized/batch queries over the same stored detail used
    to re-transpose and re-encode it per query (and per base fragment
    under ``chunk_budget``); the encoding now lives on the
    :class:`~repro.storage.relation.Relation` itself, keyed by the
    NEVER-null position set, and is invalidated exactly like the plan
    cache: ``insert``/``extend`` clear it, and DDL installs a fresh
    relation object (see ``Catalog.replace_table``).

    Scan views (``ScanTable``/``rename``) share the stored relation's
    cache dict, so a requalified view hits the same encoding — the
    typed columns are qualifier-independent; only the ``schema`` on the
    returned wrapper differs, and decoded lists plus ndarray views are
    shared with the cached instance.

    Hit/miss counts surface in the metrics registry as
    ``columnar.cache_hits`` / ``columnar.cache_misses``.
    """
    from repro.obs.metrics import get_registry

    cache = getattr(relation, "_columnar", None)
    if cache is None:
        return ColumnarRelation.from_relation(relation,
                                              never_null=never_null)
    key = frozenset(never_null)
    hit = cache.get(key)
    if hit is not None:
        get_registry().counter("columnar.cache_hits").inc()
        if hit.schema is relation.schema:
            return hit
        clone = ColumnarRelation(relation.schema, hit.columns, hit.length,
                                 name=getattr(relation, "name", None))
        clone._decoded = hit._decoded
        clone._np_columns = hit._np_columns
        return clone
    get_registry().counter("columnar.cache_misses").inc()
    built = ColumnarRelation.from_relation(relation, never_null=never_null)
    cache[key] = built
    return built
