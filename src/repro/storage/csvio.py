"""CSV import/export for relations.

The format is deliberately simple: a header row of ``name:type`` cells,
then data rows.  Empty cells are NULL.  This is enough to persist generated
workloads between benchmark runs and to let examples ship small datasets.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


def _header_cell(field: Field) -> str:
    return f"{field.full_name}:{field.dtype.value}"


def _parse_header_cell(cell: str) -> Field:
    name, sep, type_name = cell.rpartition(":")
    if not sep:
        raise SchemaError(f"malformed CSV header cell {cell!r}; want name:type")
    try:
        dtype = DataType(type_name)
    except ValueError:
        raise SchemaError(f"unknown type {type_name!r} in CSV header") from None
    qualifier: str | None
    if "." in name:
        qualifier, _, bare = name.partition(".")
    else:
        qualifier, bare = None, name
    return Field(bare, dtype, qualifier)


def save_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to ``path`` with a typed header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_header_cell(field) for field in relation.schema)
        for row in relation.rows:
            writer.writerow("" if value is None else value for value in row)


def save_catalog(catalog, directory: str | Path) -> list[Path]:
    """Write every table of a catalog as ``<directory>/<table>.csv``.

    Indexes are not persisted (they are cheap to rebuild and their
    presence is an experimental variable in this library).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in catalog.table_names():
        path = directory / f"{name}.csv"
        save_csv(catalog.table(name), path)
        written.append(path)
    return written


def load_catalog(directory: str | Path):
    """Build a catalog from every ``*.csv`` in a directory."""
    from repro.storage.catalog import Catalog

    directory = Path(directory)
    catalog = Catalog()
    for path in sorted(directory.glob("*.csv")):
        catalog.create_table(path.stem, load_csv(path))
    return catalog


def load_csv(path: str | Path, name: str | None = None) -> Relation:
    """Read a relation written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a header row") from None
        schema = Schema(_parse_header_cell(cell) for cell in header)
        rows: Iterable = (
            tuple(
                field.dtype.parse(cell)
                for field, cell in zip(schema.fields, row)
            )
            for row in reader
        )
        return Relation(schema, rows, name=name or path.stem)
