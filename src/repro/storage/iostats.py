"""Machine-independent work accounting.

The paper's experiments ran on a commercial DBMS and a C++ GMDJ engine; we
cannot reproduce 2002 wall-clock numbers, so every operator in this library
reports its work into an ambient :class:`IOStats` object.  The counters are
the cost proxies the paper reasons with:

* ``tuples_scanned`` / ``pages_read`` — relation scan volume (the dominant
  cost in OLAP; the GMDJ's selling point is a single scan of the detail
  relation).
* ``relation_scans`` — number of full passes started over stored relations.
* ``predicate_evals`` — how many times a θ/selection condition was evaluated
  (tuple-iteration semantics explodes this counter).
* ``index_probes`` / ``index_builds`` — index usage.
* ``tuples_output`` — result volume.

Page accounting is simulated: a relation of *n* tuples occupies
``ceil(n / TUPLES_PER_PAGE)`` pages and a full scan reads all of them.

Usage::

    stats = IOStats.ambient()
    stats.reset()
    ... run a query ...
    print(stats.pages_read)

Operators obtain the ambient object through :meth:`IOStats.ambient`; tests
that need isolation use :func:`collect` as a context manager, which swaps in
a fresh object and restores the previous one on exit.
"""

from __future__ import annotations

import math
from contextvars import ContextVar
from dataclasses import dataclass, field, fields as dataclass_fields

#: Simulated page capacity used for page accounting.
TUPLES_PER_PAGE = 100

#: The ambient stats object, tracked per execution context.  A
#: ``ContextVar`` rather than a module global so worker threads (the
#: parallel GMDJ pool) each get their own accumulator instead of racing
#: unsynchronized ``+=`` against the coordinator's object; the pool
#: merges worker snapshots back explicitly via :meth:`IOStats.merge`.
_ambient_var: ContextVar["IOStats | None"] = ContextVar(
    "repro_iostats_ambient", default=None
)


@dataclass
class IOStats:
    """Mutable bundle of work counters."""

    tuples_scanned: int = 0
    pages_read: int = 0
    relation_scans: int = 0
    predicate_evals: int = 0
    index_probes: int = 0
    index_builds: int = 0
    tuples_output: int = 0
    aggregate_updates: int = 0
    join_pairs_considered: int = 0
    completed_tuples: int = 0
    extra: dict = field(default_factory=dict)

    @classmethod
    def ambient(cls) -> "IOStats":
        """The context-wide stats object operators report into."""
        stats = _ambient_var.get()
        if stats is None:
            stats = cls()
            _ambient_var.set(stats)
        return stats

    @classmethod
    def _set_ambient(cls, stats: "IOStats") -> "IOStats":
        previous = cls.ambient()
        _ambient_var.set(stats)
        return previous

    def reset(self) -> None:
        for fld in dataclass_fields(self):
            if fld.name == "extra":
                self.extra = {}
            elif fld.type == "int" or isinstance(getattr(self, fld.name), int):
                setattr(self, fld.name, 0)

    def record_scan(self, tuple_count: int) -> None:
        """Account for a full pass over a stored relation."""
        self.relation_scans += 1
        self.tuples_scanned += tuple_count
        self.pages_read += math.ceil(tuple_count / TUPLES_PER_PAGE)

    def merge(self, snapshot: dict) -> None:
        """Add a counter snapshot (e.g. from a pool worker) into this object.

        Only integer counters known to this dataclass are merged; unknown
        keys are ignored so snapshots survive schema drift between
        coordinator and worker versions.
        """
        for fld in dataclass_fields(self):
            value = snapshot.get(fld.name)
            if isinstance(value, int) and isinstance(getattr(self, fld.name), int):
                setattr(self, fld.name, getattr(self, fld.name) + value)

    def snapshot(self) -> dict:
        """A plain-dict copy of all integer counters (for reporting)."""
        result = {}
        for fld in dataclass_fields(self):
            value = getattr(self, fld.name)
            if isinstance(value, int):
                result[fld.name] = value
        return result

    def total_work(self) -> int:
        """A single scalar summarizing work done, used for coarse ordering.

        The weights make a page read dominate (as in a disk-resident
        warehouse) with CPU work as a tie-breaker.
        """
        return (
            self.pages_read * 1000
            + self.predicate_evals
            + self.index_probes
            + self.aggregate_updates
            + self.join_pairs_considered
        )


class collect:
    """Context manager that installs a fresh ambient IOStats object.

    Re-entrant: the displaced ambient objects are kept on a stack, so a
    single ``collect`` instance can be entered while already active (or
    reused after exiting) and every exit restores exactly the object
    that was ambient at the matching entry.

    >>> with collect() as stats:
    ...     pass  # run a query
    >>> stats.pages_read >= 0
    True
    """

    def __init__(self) -> None:
        self.stats = IOStats()
        self._previous: list[IOStats] = []

    def __enter__(self) -> IOStats:
        self._previous.append(IOStats._set_ambient(self.stats))
        return self.stats

    def __exit__(self, *exc_info) -> None:
        assert self._previous, "collect.__exit__ without matching __enter__"
        IOStats._set_ambient(self._previous.pop())
