"""Value types for the storage engine.

The engine supports four scalar types plus SQL NULL (represented by Python
``None``).  Values are ordinary Python objects; :class:`DataType` carries the
declared column type and provides validation and coercion used by the schema
layer, the CSV reader, and the expression type checker.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeCheckError

#: The Python value used for SQL NULL throughout the library.
NULL = None


class DataType(enum.Enum):
    """Declared type of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    def validate(self, value: Any) -> Any:
        """Check ``value`` against this type, returning the value.

        ``None`` (SQL NULL) is valid for every type.  Integers are accepted
        for FLOAT columns (widened on the fly); ``bool`` is *not* accepted
        for INTEGER columns even though ``bool`` subclasses ``int``.
        """
        if value is NULL:
            return value
        if self is DataType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeCheckError(f"expected INTEGER, got {value!r}")
        elif self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeCheckError(f"expected FLOAT, got {value!r}")
            return float(value)
        elif self is DataType.STRING:
            if not isinstance(value, str):
                raise TypeCheckError(f"expected STRING, got {value!r}")
        elif self is DataType.BOOLEAN:
            if not isinstance(value, bool):
                raise TypeCheckError(f"expected BOOLEAN, got {value!r}")
        return value

    def parse(self, text: str) -> Any:
        """Parse a CSV field into a value of this type.

        The empty string is read as NULL.
        """
        if text == "":
            return NULL
        if self is DataType.INTEGER:
            return int(text)
        if self is DataType.FLOAT:
            return float(text)
        if self is DataType.BOOLEAN:
            lowered = text.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
            raise TypeCheckError(f"cannot parse BOOLEAN from {text!r}")
        return text

    @staticmethod
    def infer(value: Any) -> "DataType":
        """Infer the type of a Python value (NULL has no type and raises)."""
        if isinstance(value, bool):
            return DataType.BOOLEAN
        if isinstance(value, int):
            return DataType.INTEGER
        if isinstance(value, float):
            return DataType.FLOAT
        if isinstance(value, str):
            return DataType.STRING
        raise TypeCheckError(f"cannot infer a column type for {value!r}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the widened type of a binary arithmetic/comparison pair."""
    if left is right:
        return left
    if left.is_numeric and right.is_numeric:
        return DataType.FLOAT
    raise TypeCheckError(f"incompatible types: {left.value} vs {right.value}")


def comparable(left: DataType, right: DataType) -> bool:
    """True when values of the two types may be compared with <, =, etc."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric
