"""Binary columnar persistence: ``.npy`` per column plus a JSON manifest.

A table saved with :func:`save_binary` becomes a directory::

    orders.cols/
        manifest.json        # schema, row count, per-column descriptors
        c0.npy               # column 0 values (int64/float64/uint8/int32)
        c0.mask.npy          # column 0 validity mask (uint8), if needed
        c1.npy
        ...

The column files are standard NPY version-1 arrays, so any numpy
installation reads them directly — and :func:`load_binary` does exactly
that via ``np.load(mmap_mode="r")``, giving the whole-array kernel
memory-mapped buffers without a parse step.  The format is nevertheless
**dependency-free**: this module carries its own NPY v1 reader/writer
(the header is a ``repr``'d dict; ``ast.literal_eval`` parses it back),
and without numpy the loader serves zero-copy ``memoryview`` casts over
``mmap`` — the python batch kernel decodes those through the same
``tolist`` path it uses for in-memory ``array`` storage.

What is persisted is the engine's own columnar encoding
(:mod:`repro.storage.columnar`): typed buffers, out-of-band validity
masks, dictionary-encoded strings (the dictionary rides in the
manifest — OLAP dimension strings keep it tiny).  Columns encoded
mask-free (certified NEVER-null at save time) are stored without a mask
file and come back mask-free, so the certificate benefit survives the
round trip.  Object-encoded columns (mixed types, >64-bit ints) have no
array representation; their values are stored in the manifest as JSON.

The loaded :class:`~repro.storage.relation.Relation` materializes its
row list once (``tolist`` + ``zip`` — no text parsing), and the loaded
columnar encoding is seeded into the relation's encoding cache, so the
first vectorized query scans the memory-mapped buffers directly instead
of re-transposing the rows.

Parquet interchange (:func:`save_parquet` / :func:`load_parquet`) is
gated behind the optional ``pyarrow`` extra and raises a clean
:class:`~repro.errors.ConfigurationError` when it is not installed; the
native format above never needs it.
"""

from __future__ import annotations

import ast
import json
import mmap
import struct
import sys
from pathlib import Path
from typing import Any, Collection

from repro.errors import ConfigurationError, SchemaError
from repro.storage.columnar import ColumnarRelation, ColumnData
from repro.storage.npcolumns import HAVE_NUMPY
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

#: Directory suffix marking a binary table (``<name>.cols/``).
TABLE_SUFFIX = ".cols"

_MAGIC = b"\x93NUMPY"

#: NPY descr per column kind — all little-endian on disk.
_KIND_DESCR = {"int": "<i8", "float": "<f8", "bool": "|u1", "dict": "<i4"}

#: descr → (struct/memoryview typecode, itemsize) for the pure-python path.
_DESCR_CODES = {"<i8": ("q", 8), "<f8": ("d", 8),
                "|u1": ("B", 1), "<i4": ("i", 4)}


# -- NPY v1, dependency-free ----------------------------------------------


def _write_npy(path: Path, descr: str, payload: bytes, count: int) -> None:
    """Write a 1-D NPY v1 file numpy's own ``np.load`` accepts."""
    header = (f"{{'descr': {descr!r}, 'fortran_order': False, "
              f"'shape': ({count},), }}")
    # magic(6) + version(2) + headerlen(2) + header, padded so the data
    # start is 64-byte aligned, terminated by a newline (NPY spec).
    base = len(_MAGIC) + 2 + 2
    total = base + len(header) + 1
    padding = (64 - total % 64) % 64
    text = header + " " * padding + "\n"
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(bytes((1, 0)))
        handle.write(struct.pack("<H", len(text)))
        handle.write(text.encode("latin1"))
        handle.write(payload)


def _read_npy_header(handle) -> tuple[str, int, int]:
    """Parse an NPY header; returns ``(descr, count, data_offset)``."""
    magic = handle.read(6)
    if magic != _MAGIC:
        raise SchemaError(f"{handle.name} is not an NPY file")
    major, _minor = handle.read(2)
    if major == 1:
        (header_len,) = struct.unpack("<H", handle.read(2))
        offset = 10 + header_len
    elif major == 2:
        (header_len,) = struct.unpack("<I", handle.read(4))
        offset = 12 + header_len
    else:
        raise SchemaError(f"unsupported NPY version {major} in {handle.name}")
    header = ast.literal_eval(handle.read(header_len).decode("latin1"))
    descr = header["descr"]
    if header.get("fortran_order"):
        raise SchemaError(f"{handle.name}: fortran-order arrays unsupported")
    shape = header["shape"]
    if len(shape) != 1:
        raise SchemaError(f"{handle.name}: expected a 1-D column, "
                          f"got shape {shape}")
    return descr, shape[0], offset


def _column_payload(data: Any) -> bytes:
    """The raw little-endian bytes of one column's typed storage."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian only
        raise ConfigurationError(
            "save_binary writes little-endian NPY; big-endian hosts "
            "are not supported")
    return bytes(memoryview(data).cast("B"))


def _load_column_values(path: Path, descr: str) -> Any:
    """Memory-mapped column values: ndarray if numpy, memoryview else."""
    if HAVE_NUMPY:
        import numpy as np

        values = np.load(path, mmap_mode="r")
        if values.dtype.byteorder not in ("=", "|", "<"):
            values = values.astype(
                values.dtype.newbyteorder("="))  # pragma: no cover
        return values
    code, itemsize = _DESCR_CODES[descr]
    with path.open("rb") as handle:
        file_descr, count, offset = _read_npy_header(handle)
        if file_descr != descr:
            raise SchemaError(
                f"{path}: manifest says {descr}, file says {file_descr}")
        if count == 0:
            return memoryview(b"").cast(code)
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)[offset:offset + count * itemsize]
    # The memoryview keeps the mmap alive; casting preserves that.
    return view.cast(code)


# -- save -----------------------------------------------------------------


def save_binary(relation: Relation, path: str | Path,
                never_null: Collection[int] = frozenset()) -> Path:
    """Write ``relation`` as a binary column directory (``<path>``).

    ``never_null`` marks column positions to encode (and persist)
    mask-free, exactly as :meth:`ColumnarRelation.from_relation` would;
    pass a capability certificate's NEVER-null set to keep that proof's
    benefit on disk.  Returns the directory written.
    """
    path = Path(path)
    if path.suffix != TABLE_SUFFIX:
        path = path.with_name(path.name + TABLE_SUFFIX)
    path.mkdir(parents=True, exist_ok=True)
    columnar = ColumnarRelation.from_relation(relation,
                                              never_null=never_null)
    fields = []
    for position, (field, column) in enumerate(
            zip(relation.schema.fields, columnar.columns)):
        descriptor: dict[str, Any] = {
            "name": field.name,
            "qualifier": field.qualifier,
            "dtype": field.dtype.value,
            "kind": column.kind,
        }
        if column.kind == "object":
            # No fixed-width representation; the manifest carries the
            # values (arbitrary-precision ints survive JSON).
            descriptor["values"] = column.data
        else:
            descr = _KIND_DESCR[column.kind]
            file_name = f"c{position}.npy"
            _write_npy(path / file_name, descr,
                       _column_payload(column.data), len(column))
            descriptor["file"] = file_name
            if column.dictionary is not None:
                descriptor["dictionary"] = column.dictionary
        if column.valid is not None:
            mask_name = f"c{position}.mask.npy"
            _write_npy(path / mask_name, "|u1", bytes(column.valid),
                       len(column.valid))
            descriptor["mask"] = mask_name
        fields.append(descriptor)
    manifest = {
        "format": "repro-columnar",
        "version": 1,
        "name": relation.name or path.stem,
        "rows": len(relation),
        "fields": fields,
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=1))
    return path


# -- load -----------------------------------------------------------------


def _load_column(path: Path, descriptor: dict, rows: int) -> ColumnData:
    kind = descriptor["kind"]
    valid = None
    mask_name = descriptor.get("mask")
    if mask_name is not None:
        # Masks come back as real bytearrays: they are mutated by no one
        # but summed/zipped everywhere, and at one byte per row the copy
        # is immaterial next to keeping the value buffers mapped.
        raw = _load_column_values(path / mask_name, "|u1")
        valid = bytearray(memoryview(raw).cast("B"))
    if kind == "object":
        values = [None if v is None else v for v in descriptor["values"]]
        return ColumnData("object", values, valid)
    values = _load_column_values(path / descriptor["file"],
                                 _KIND_DESCR[kind])
    if len(values) != rows:
        raise SchemaError(
            f"{path}: column {descriptor['name']!r} holds {len(values)} "
            f"values for a {rows}-row table")
    return ColumnData(kind, values, valid,
                      descriptor.get("dictionary"))


def load_binary(path: str | Path, name: str | None = None) -> Relation:
    """Read a table written by :func:`save_binary`.

    The returned relation's rows reproduce the saved rows exactly (same
    values, same order, NULLs included).  Its columnar-encoding cache is
    pre-seeded with the memory-mapped columns, so vectorized evaluation
    scans the mapped buffers without re-encoding.
    """
    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise SchemaError(f"{path} has no manifest.json; "
                          f"not a binary table directory")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "repro-columnar":
        raise SchemaError(f"{manifest_path}: unrecognized format "
                          f"{manifest.get('format')!r}")
    if manifest.get("version") != 1:
        raise SchemaError(f"{manifest_path}: unsupported version "
                          f"{manifest.get('version')!r}")
    rows = manifest["rows"]
    schema = Schema(
        Field(descriptor["name"], DataType(descriptor["dtype"]),
              descriptor["qualifier"])
        for descriptor in manifest["fields"]
    )
    columns = [_load_column(path, descriptor, rows)
               for descriptor in manifest["fields"]]
    table_name = name or manifest.get("name") or table_stem(path)
    columnar = ColumnarRelation(schema, columns, rows, name=table_name)
    relation = columnar.to_relation()
    # Seed the encoding cache: the plain key always matches, and the
    # mask-free key serves queries whose certificate proves exactly the
    # columns that were saved mask-free.
    relation._columnar[frozenset()] = columnar
    mask_free = frozenset(
        position for position, column in enumerate(columns)
        if column.mask_free
    )
    if mask_free:
        relation._columnar[mask_free] = columnar
    return relation


def table_stem(path: Path) -> str:
    """Table name from a directory path, dropping the ``.cols`` suffix."""
    return path.name[:-len(TABLE_SUFFIX)] \
        if path.name.endswith(TABLE_SUFFIX) else path.name


# -- catalog-level helpers ------------------------------------------------


def save_catalog_binary(catalog, directory: str | Path) -> list[Path]:
    """Write every table of a catalog as ``<directory>/<table>.cols/``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [save_binary(catalog.table(table_name),
                        directory / f"{table_name}{TABLE_SUFFIX}")
            for table_name in catalog.table_names()]


def binary_tables(directory: str | Path) -> list[Path]:
    """The binary table directories under ``directory``, sorted by name."""
    directory = Path(directory)
    return sorted(
        (entry for entry in directory.glob(f"*{TABLE_SUFFIX}")
         if entry.is_dir() and (entry / "manifest.json").is_file()),
        key=lambda entry: entry.name,
    )


def load_catalog_binary(directory: str | Path):
    """Build a catalog from every ``*.cols/`` table in a directory."""
    from repro.storage.catalog import Catalog

    catalog = Catalog()
    for table_dir in binary_tables(directory):
        catalog.create_table(table_stem(table_dir), load_binary(table_dir))
    return catalog


# -- optional parquet interchange (pyarrow extra) -------------------------


def _require_pyarrow() -> Any:
    try:  # pragma: no cover - depends on environment
        import pyarrow
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        raise ConfigurationError(
            "parquet interchange requires the optional pyarrow extra; "
            "install it with: pip install repro[parquet] "
            "(the native .cols binary format needs no dependencies)"
        ) from None
    return pyarrow  # pragma: no cover


_ARROW_TYPES = {
    DataType.INTEGER: "int64",
    DataType.FLOAT: "float64",
    DataType.BOOLEAN: "bool_",
    DataType.STRING: "string",
}


def save_parquet(relation: Relation, path: str | Path) -> Path:
    """Write ``relation`` as a Parquet file (requires pyarrow)."""
    pa = _require_pyarrow()
    import pyarrow.parquet as pq  # pragma: no cover

    path = Path(path)  # pragma: no cover
    arrays = [  # pragma: no cover
        pa.array(relation.column(field.full_name),
                 type=getattr(pa, _ARROW_TYPES[field.dtype])())
        for field in relation.schema.fields
    ]
    table = pa.table(arrays,  # pragma: no cover
                     names=[field.full_name
                            for field in relation.schema.fields])
    pq.write_table(table, path)  # pragma: no cover
    return path  # pragma: no cover


def load_parquet(path: str | Path, schema: Schema,
                 name: str | None = None) -> Relation:
    """Read a Parquet file into ``schema`` (requires pyarrow)."""
    _require_pyarrow()
    import pyarrow.parquet as pq  # pragma: no cover

    table = pq.read_table(Path(path))  # pragma: no cover
    rows = zip(*(column.to_pylist()  # pragma: no cover
                 for column in table.columns))
    return Relation(schema, rows, name=name)  # pragma: no cover
