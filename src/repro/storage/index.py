"""Secondary indexes over stored relations.

Two access methods are provided:

* :class:`HashIndex` — equality lookups on one or more attributes.  This is
  the "hash index strategy" the paper's prototype GMDJ engine was limited to
  (Section 5), and it also backs the native engine's index-assisted
  correlation lookups in the baselines.
* :class:`SortedIndex` — a sorted list with binary search supporting range
  probes; used by the join-unnesting baseline's sort-merge join and by
  inequality correlation predicates.

NULL handling: SQL equality never matches NULL, so rows with a NULL in any
key attribute are excluded from both index types (a probe can never return
them under 3-valued logic).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro.storage.iostats import IOStats
from repro.storage.relation import Relation, Row


class HashIndex:
    """Equality index mapping key tuples to lists of row positions."""

    __slots__ = ("relation", "key_references", "_key_positions", "_buckets")

    def __init__(self, relation: Relation, key_references: Sequence[str]):
        self.relation = relation
        self.key_references = tuple(key_references)
        self._key_positions = [
            relation.schema.index_of(ref) for ref in key_references
        ]
        self._buckets: dict[tuple, list[int]] = {}
        for position, row in enumerate(relation.rows):
            key = self._key_of(row)
            if key is None:
                continue
            self._buckets.setdefault(key, []).append(position)
        IOStats.ambient().index_builds += 1

    def _key_of(self, row: Row) -> tuple | None:
        key = tuple(row[i] for i in self._key_positions)
        if any(part is None for part in key):
            return None
        return key

    def __len__(self) -> int:
        return len(self._buckets)

    def probe(self, key: Sequence[Any]) -> list[Row]:
        """All rows whose key attributes equal ``key`` (never NULL keys)."""
        IOStats.ambient().index_probes += 1
        if any(part is None for part in key):
            return []
        positions = self._buckets.get(tuple(key), [])
        rows = self.relation.rows
        return [rows[p] for p in positions]

    def probe_positions(self, key: Sequence[Any]) -> list[int]:
        """Row positions instead of rows (used by tuple completion)."""
        IOStats.ambient().index_probes += 1
        if any(part is None for part in key):
            return []
        return self._buckets.get(tuple(key), [])

    def contains(self, key: Sequence[Any]) -> bool:
        IOStats.ambient().index_probes += 1
        if any(part is None for part in key):
            return False
        return tuple(key) in self._buckets


class SortedIndex:
    """Sorted single-attribute index with range probes."""

    __slots__ = ("relation", "key_reference", "_key_position", "_entries")

    def __init__(self, relation: Relation, key_reference: str):
        self.relation = relation
        self.key_reference = key_reference
        self._key_position = relation.schema.index_of(key_reference)
        entries = [
            (row[self._key_position], position)
            for position, row in enumerate(relation.rows)
            if row[self._key_position] is not None
        ]
        entries.sort(key=lambda e: e[0])
        self._entries = entries
        IOStats.ambient().index_builds += 1

    def __len__(self) -> int:
        return len(self._entries)

    def _keys(self) -> list:
        return [key for key, _ in self._entries]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
    ) -> Iterator[Row]:
        """Rows with key in the given (half-open by default) interval."""
        IOStats.ambient().index_probes += 1
        keys = self._keys()
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(keys, low)
        else:
            start = bisect.bisect_right(keys, low)
        if high is None:
            stop = len(keys)
        elif high_inclusive:
            stop = bisect.bisect_right(keys, high)
        else:
            stop = bisect.bisect_left(keys, high)
        rows = self.relation.rows
        for _, position in self._entries[start:stop]:
            yield rows[position]

    def equal(self, key: Any) -> Iterator[Row]:
        return self.range(low=key, high=key, high_inclusive=True)
