"""NumPy views over columnar storage (optional dependency gate).

This module is the single place the engine asks two questions:

* *Is numpy available?* — :data:`HAVE_NUMPY` / :func:`require_numpy`.
  Everything else in the numpy backend imports ``numpy`` through here,
  so a missing install degrades to one clean
  :class:`~repro.errors.ConfigurationError` instead of scattered
  ``ImportError`` noise.  The python batch kernel never touches this
  module; the package stays dependency-free by default.
* *What does this column look like as an ndarray?* —
  :func:`column_array`, which exposes a
  :class:`~repro.storage.columnar.ColumnData` as a **zero-copy**
  ``np.frombuffer`` view plus a boolean validity mask.  ``array('q')``,
  ``array('d')``, ``array('i')`` and ``bytearray`` all implement the
  buffer protocol, so no bytes are moved: the numpy kernel reads the
  exact storage the python kernel decodes.

Views are cached per :class:`~repro.storage.columnar.ColumnarRelation`
(one tuple per column position), so repeated vectorized queries against
a cached encoding (see :func:`repro.storage.columnar.cached_columnar`)
also reuse the ndarray wrappers.

A column certified NEVER-null encodes with ``valid=None``; its view
carries ``mask=None`` ("nothing is null") and the whole-array kernels
skip every mask operation on it — the certificate benefit the issue
asks for.  Object columns (mixed/overflowed values) have no array
representation and yield ``None``, which the kernel treats as a
per-operator fallback to the python path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.storage.columnar import ColumnarRelation

try:  # pragma: no cover - exercised via both CI legs
    import numpy
except ImportError:  # pragma: no cover
    numpy = None  # type: ignore[assignment]

#: True when the optional numpy extra is importable.
HAVE_NUMPY = numpy is not None


def require_numpy() -> Any:
    """Return the numpy module or raise a clean configuration error."""
    if numpy is None:
        raise ConfigurationError(
            "backend 'numpy' requires the optional numpy extra; "
            "install it with: pip install repro[numpy]"
        )
    return numpy


class NpColumn:
    """One column as ndarrays: values, validity, optional dictionary.

    ``values`` is the typed buffer viewed in place (int64 / float64 /
    bool flags / int32 dictionary codes).  ``mask`` is ``None`` when the
    column is mask-free (certified NEVER-null), else a bool ndarray with
    True = present.  ``dictionary`` carries the decoded string table for
    ``kind == "dict"`` columns.
    """

    __slots__ = ("kind", "values", "mask", "dictionary")

    def __init__(self, kind: str, values: Any, mask: Any,
                 dictionary: list | None) -> None:
        self.kind = kind  # "int" | "float" | "bool" | "dict"
        self.values = values
        self.mask = mask
        self.dictionary = dictionary


_KIND_DTYPES = {"int": "int64", "float": "float64"}


def _build_column(column: Any) -> NpColumn | None:
    """Zero-copy ndarray view of one ColumnData (None for object cols)."""
    np = numpy
    kind = column.kind
    if kind == "object":
        return None
    if kind in _KIND_DTYPES:
        values = np.frombuffer(column.data, dtype=_KIND_DTYPES[kind]) \
            if len(column.data) else np.empty(0, dtype=_KIND_DTYPES[kind])
    elif kind == "bool":
        values = (np.frombuffer(column.data, dtype=np.uint8)
                  if len(column.data) else np.empty(0, dtype=np.uint8)
                  ).view(np.bool_)
    elif kind == "dict":
        values = np.frombuffer(column.data, dtype=np.int32) \
            if len(column.data) else np.empty(0, dtype=np.int32)
    else:  # pragma: no cover - exhaustive over ColumnData kinds
        return None
    if column.valid is None:
        mask = None
    else:
        mask = (np.frombuffer(column.valid, dtype=np.uint8)
                if len(column.valid) else np.empty(0, dtype=np.uint8)
                ).view(np.bool_)
    return NpColumn(kind, values, mask, column.dictionary)


def column_array(columnar: "ColumnarRelation", position: int,
                 ) -> NpColumn | None:
    """The ndarray view of column ``position``, cached on the relation.

    Returns ``None`` for object-encoded columns — the caller falls back
    to the python kernel for expressions touching them.
    """
    require_numpy()
    cache = columnar._np_columns
    entry = cache[position]
    if entry is False:
        entry = cache[position] = _build_column(columnar.columns[position])
    return entry
