"""Storage substrate: types, schemas, relations, indexes, catalog, I/O."""

from repro.storage.binio import (
    load_binary,
    load_catalog_binary,
    save_binary,
    save_catalog_binary,
)
from repro.storage.catalog import Catalog
from repro.storage.columnar import ColumnarRelation, ColumnData
from repro.storage.csvio import load_catalog, load_csv, save_catalog, save_csv
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.iostats import IOStats, TUPLES_PER_PAGE, collect
from repro.storage.relation import Relation, Row
from repro.storage.schema import Field, Schema
from repro.storage.types import NULL, DataType, common_type, comparable

__all__ = [
    "Catalog",
    "ColumnData",
    "ColumnarRelation",
    "DataType",
    "Field",
    "HashIndex",
    "IOStats",
    "NULL",
    "Relation",
    "Row",
    "Schema",
    "SortedIndex",
    "TUPLES_PER_PAGE",
    "collect",
    "common_type",
    "comparable",
    "load_binary",
    "load_catalog",
    "load_catalog_binary",
    "load_csv",
    "save_binary",
    "save_catalog",
    "save_catalog_binary",
    "save_csv",
]
