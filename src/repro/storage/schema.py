"""Schemas: ordered, possibly qualified attribute lists.

A :class:`Field` is an attribute with an optional *qualifier* (the relation
alias it came from, e.g. ``F`` in ``F.StartTime``).  A :class:`Schema` is an
ordered sequence of fields and provides the name-resolution rules used by
every expression in the library:

* ``"StartTime"`` matches any field named ``StartTime`` regardless of
  qualifier; it is an error if more than one field matches.
* ``"F.StartTime"`` matches only a field named ``StartTime`` whose qualifier
  is ``F``.

Renaming a relation (the paper's ``Flow -> F`` notation) replaces the
qualifier of every field, which is how correlated conditions such as
``F_1.SourceIP = F_0.SourceIP`` distinguish two scans of the same table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import (
    AmbiguousAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from repro.storage.types import DataType


@dataclass(frozen=True)
class Field:
    """A single attribute: optional qualifier, name, and declared type."""

    name: str
    dtype: DataType
    qualifier: str | None = None

    @property
    def full_name(self) -> str:
        """The display name, qualified when a qualifier is present."""
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    def matches(self, reference: str) -> bool:
        """True when ``reference`` (qualified or bare) refers to this field."""
        if "." in reference:
            qualifier, _, name = reference.partition(".")
            return self.name == name and self.qualifier == qualifier
        return self.name == reference

    def with_qualifier(self, qualifier: str | None) -> "Field":
        return Field(self.name, self.dtype, qualifier)


class Schema:
    """An ordered list of fields with unambiguous-resolution helpers."""

    __slots__ = ("fields", "_exact")

    def __init__(self, fields: Iterable[Field]):
        self.fields: tuple[Field, ...] = tuple(fields)
        seen: set[tuple[str | None, str]] = set()
        for field in self.fields:
            key = (field.qualifier, field.name)
            if key in seen:
                raise SchemaError(f"duplicate attribute {field.full_name!r}")
            seen.add(key)
        self._exact = {field.full_name: i for i, field in enumerate(self.fields)}

    @staticmethod
    def of(*pairs: tuple[str, DataType], qualifier: str | None = None) -> "Schema":
        """Convenience constructor from ``(name, dtype)`` pairs."""
        return Schema(Field(name, dtype, qualifier) for name, dtype in pairs)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.full_name}:{f.dtype.value}" for f in self.fields)
        return f"Schema({inner})"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(field.full_name for field in self.fields)

    def index_of(self, reference: str) -> int:
        """Resolve an attribute reference to a column position.

        Raises :class:`UnknownAttributeError` when nothing matches and
        :class:`AmbiguousAttributeError` when several fields match a bare
        (unqualified) reference.
        """
        exact = self._exact.get(reference)
        if exact is not None:
            return exact
        matches = [i for i, field in enumerate(self.fields) if field.matches(reference)]
        if not matches:
            raise UnknownAttributeError(
                f"unknown attribute {reference!r}; schema has {list(self.names)}"
            )
        if len(matches) > 1:
            raise AmbiguousAttributeError(
                f"ambiguous attribute {reference!r}; matches "
                f"{[self.fields[i].full_name for i in matches]}"
            )
        return matches[0]

    def field_of(self, reference: str) -> Field:
        return self.fields[self.index_of(reference)]

    def has(self, reference: str) -> bool:
        """True when ``reference`` resolves (unambiguously) in this schema."""
        try:
            self.index_of(reference)
        except (UnknownAttributeError, AmbiguousAttributeError):
            return False
        return True

    def qualifiers(self) -> set[str]:
        """The set of non-None qualifiers appearing in this schema."""
        return {f.qualifier for f in self.fields if f.qualifier is not None}

    def rename(self, qualifier: str) -> "Schema":
        """Replace the qualifier of every field (``Flow -> F``)."""
        return Schema(field.with_qualifier(qualifier) for field in self.fields)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a product/join of two relations."""
        return Schema(self.fields + other.fields)

    def project(self, references: Sequence[str]) -> "Schema":
        """Schema restricted to the given references, in the given order."""
        return Schema(self.field_of(ref) for ref in references)

    def extend(self, fields: Iterable[Field]) -> "Schema":
        """Schema with extra fields appended (used by GMDJ output)."""
        return Schema(self.fields + tuple(fields))
