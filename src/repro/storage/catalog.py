"""The catalog: named relations and their indexes.

A :class:`Catalog` owns base tables and tracks which attributes are indexed.
The planner and the baselines consult it to decide between indexed and
scan-based access paths — the experiments in Figures 2–5 of the paper hinge
on dropping indexes and watching which strategy stays stable, so index
creation and dropping are first-class operations here.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CatalogError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.relation import Relation


class Catalog:
    """A name → relation mapping with per-table index registries."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._hash_indexes: dict[tuple[str, tuple[str, ...]], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}

    # -- tables ----------------------------------------------------------------

    def create_table(self, name: str, relation: Relation) -> Relation:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        relation.name = name
        self._tables[name] = relation
        return relation

    def replace_table(self, name: str, relation: Relation) -> Relation:
        """Install or overwrite a table, invalidating its indexes."""
        relation.name = name
        self._tables[name] = relation
        self._hash_indexes = {
            key: idx for key, idx in self._hash_indexes.items() if key[0] != name
        }
        self._sorted_indexes = {
            key: idx for key, idx in self._sorted_indexes.items() if key[0] != name
        }
        return relation

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no such table {name!r}")
        del self._tables[name]
        self._hash_indexes = {
            key: idx for key, idx in self._hash_indexes.items() if key[0] != name
        }
        self._sorted_indexes = {
            key: idx for key, idx in self._sorted_indexes.items() if key[0] != name
        }

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- indexes ---------------------------------------------------------------

    def create_hash_index(self, table: str, attributes: Sequence[str]) -> HashIndex:
        relation = self.table(table)
        key = (table, tuple(attributes))
        if key in self._hash_indexes:
            raise CatalogError(f"hash index on {key} already exists")
        index = HashIndex(relation, attributes)
        self._hash_indexes[key] = index
        return index

    def create_sorted_index(self, table: str, attribute: str) -> SortedIndex:
        relation = self.table(table)
        key = (table, attribute)
        if key in self._sorted_indexes:
            raise CatalogError(f"sorted index on {key} already exists")
        index = SortedIndex(relation, attribute)
        self._sorted_indexes[key] = index
        return index

    def hash_index(self, table: str, attributes: Sequence[str]) -> HashIndex | None:
        return self._hash_indexes.get((table, tuple(attributes)))

    def sorted_index(self, table: str, attribute: str) -> SortedIndex | None:
        return self._sorted_indexes.get((table, attribute))

    def indexed_attributes(self, table: str) -> set[str]:
        """All attributes of ``table`` covered by a single-column index."""
        single = {
            attrs[0]
            for (tbl, attrs) in self._hash_indexes
            if tbl == table and len(attrs) == 1
        }
        single |= {attr for (tbl, attr) in self._sorted_indexes if tbl == table}
        return single

    def drop_all_indexes(self, table: str | None = None) -> int:
        """Drop indexes (of one table, or all); returns how many were dropped.

        Used by the Figure 5 experiment to study strategy stability when
        indexes are absent.
        """
        def keep(key_table: str) -> bool:
            return table is not None and key_table != table

        dropped = 0
        for registry in (self._hash_indexes, self._sorted_indexes):
            stale = [key for key in registry if not keep(key[0])]
            dropped += len(stale)
            for key in stale:
                del registry[key]
        return dropped
