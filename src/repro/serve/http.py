"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The project has zero runtime dependencies, so the service speaks just
enough HTTP itself: request line + headers + ``Content-Length`` body in,
JSON responses with keep-alive out.  Deliberately *not* supported (each
answered with the right status rather than misparsed): chunked request
bodies (501), bodies over the configured cap (413), header blocks over
32 KiB (431), and non-1.x protocol versions (505).

Everything here is transport; routing and semantics live in
:mod:`repro.serve.service`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

#: Request line + headers must fit in this many bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Default cap on request bodies (the service may lower it).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class HttpError(Exception):
    """A request that cannot proceed; carries the response status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self):
        """The body decoded as JSON (400 on garbage)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from None


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {raw_length!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {raw_length!r}")
        if length > max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds the {max_body} cap"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    return HttpRequest(
        method=method.upper(), path=split.path or "/",
        query=query, headers=headers, body=body,
    )


def json_response(status: int, payload, keep_alive: bool = True) -> bytes:
    """Serialize one JSON response, ready to write to the transport."""
    body = json.dumps(payload, default=str).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body
