"""Bounded admission queue with load shedding for the query service.

Classic closed-system admission control: at most ``workers`` requests
execute at once (one per dispatcher thread), at most ``queue_depth``
more may wait, and anything beyond that is shed immediately with a 429
instead of being allowed to build an unbounded backlog.  Shedding at
the door is what keeps tail latency bounded under overload — a queued
request's latency is (queue wait + service time), so the queue bound
*is* the latency bound.

Deadlines compose with the queue: a request that times out while
waiting withdraws its claim (the semaphore permit is never taken), so
an abandoned wait can not consume a worker slot later.  All state
changes happen on the event loop, so the counters need no lock.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import ConfigurationError


class QueueFull(Exception):
    """The admission queue is at capacity; the request was shed."""


class AdmissionController:
    """Bounded waiting room in front of a fixed worker pool."""

    def __init__(self, workers: int, queue_depth: int):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 0:
            raise ConfigurationError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        self.workers = workers
        self.queue_depth = queue_depth
        self._semaphore = asyncio.Semaphore(workers)
        self.waiting = 0
        self.executing = 0
        self.admitted = 0
        self.shed = 0
        self.timeouts = 0
        self.completed = 0

    def slot(self) -> "_Slot":
        """An async context manager holding one execution slot.

        Raises :class:`QueueFull` *synchronously* on entry when the
        waiting room is at capacity — shed decisions must not await.
        """
        return _Slot(self)

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "waiting": self.waiting,
            "executing": self.executing,
            "admitted": self.admitted,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "completed": self.completed,
        }

    async def quiesce(self, timeout: float | None = None) -> bool:
        """Wait until nothing is waiting or executing (drain barrier)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.waiting or self.executing:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True


class _Slot:
    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self._held = False

    async def __aenter__(self) -> "_Slot":
        controller = self._controller
        # Shed only when the pool is saturated AND the waiting room is
        # full; with free workers the acquire below never blocks, so a
        # queue_depth of 0 still admits up to ``workers`` requests.
        if (controller._semaphore.locked()
                and controller.waiting >= controller.queue_depth):
            controller.shed += 1
            raise QueueFull(
                f"admission queue full ({controller.queue_depth} waiting)"
            )
        controller.waiting += 1
        try:
            await controller._semaphore.acquire()
        except BaseException:
            # Cancelled (deadline) while queued: withdraw the claim.
            controller.waiting -= 1
            controller.timeouts += 1
            raise
        controller.waiting -= 1
        controller.executing += 1
        controller.admitted += 1
        self._held = True
        return self

    def release(self) -> None:
        """Return the slot (idempotent; loop-thread only).

        Exposed separately from ``__aexit__`` because a timed-out
        request must keep holding its slot until the worker thread
        actually finishes — the service releases from the executor
        future's done-callback in that case, so an abandoned request can
        never let a new one oversubscribe the pool.
        """
        if not self._held:
            return
        self._held = False
        controller = self._controller
        controller.executing -= 1
        controller.completed += 1
        controller._semaphore.release()

    async def __aexit__(self, *exc_info) -> None:
        self.release()
