"""The asyncio multi-tenant query service.

Architecture — one event loop, a fixed dispatcher pool, per-tenant
engines:

* The **event loop** owns the sockets, parses requests
  (:mod:`repro.serve.http`), makes the admission decision
  (:mod:`repro.serve.admission`), and enforces deadlines.  It never
  executes a query.
* Admitted requests are dispatched to a **worker thread pool** (drawn
  from the same :class:`~repro.gmdj.pool.PoolRegistry` machinery the
  GMDJ partition workers use) via ``run_in_executor``, with the calling
  context copied so the request's metrics scope and the tenant's pool
  registry resolve inside the thread.
* The thread runs the tiered serving path
  (:meth:`repro.serve.state.Tenant.run_query`): result cache, rollup
  store, then execution — under the tenant's reader-writer lock.

Failure semantics the tests pin down:

* queue full        → **429** immediately (load shedding);
* draining          → **503** for every new request;
* deadline exceeded → **408**; if the request was already executing,
  its thread keeps the admission slot until it actually finishes, so an
  abandoned request can never let a fresh one oversubscribe the pool,
  and the tenant's state (built under the read/write lock) is never
  corrupted by the cancellation;
* engine errors     → **400** with the error text (they are the
  client's query, not a server fault); anything unexpected → **500**.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import time
from dataclasses import dataclass, field

from repro.engine.options import QueryOptions
from repro.errors import ReproError
from repro.gmdj.pool import PoolRegistry
from repro.obs.metrics import get_registry
from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    json_response,
    read_request,
)
from repro.serve.state import (
    DeadlineExceeded,
    TenantLimitError,
    TenantRegistry,
    parse_options,
)

DEFAULT_PORT = 8125


@dataclass
class ServeConfig:
    """Everything the service needs to know, in one frozen-ish bundle."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 4
    queue_depth: int = 64
    deadline_ms: float = 30_000.0
    max_body: int = MAX_BODY_BYTES
    max_tenants: int = 16
    cache_size: int = 128
    drain_grace_s: float = 10.0
    #: When > 0, ``/query`` requests wait up to this long for other
    #: requests with the same tenant and options, then execute together
    #: through the MQO batch path (one admission slot per flush).
    batch_window_ms: float = 0.0
    #: Server-side execution defaults; request ``options`` override.
    options: QueryOptions = field(default_factory=QueryOptions)


@dataclass
class _BatchWindow:
    """One open batch window's accumulating requests (event-loop only)."""

    tenant: object
    options: QueryOptions
    sqls: list = field(default_factory=list)
    futures: list = field(default_factory=list)
    deadline_s: float | None = None


class QueryService:
    """The serving tier: admission, tenancy, dispatch, endpoints."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.tenants = TenantRegistry(
            max_tenants=self.config.max_tenants,
            cache_size=self.config.cache_size,
        )
        self.admission = AdmissionController(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
        )
        #: The dispatcher executors; shut down on drain.  Thread workers
        #: — tenant databases live in this process — while partitioned
        #: GMDJ evaluation below may still fan out to process pools.
        self.pools = PoolRegistry()
        self._executor = self.pools.get("thread", self.config.workers)
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._started_at = time.time()
        self.port: int | None = None
        self.statuses: dict[int, int] = {}
        #: Open batch windows, keyed by (tenant, options); each flushes
        #: once via ``loop.call_later`` after ``batch_window_ms``.
        self._windows: dict[tuple, _BatchWindow] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (port 0 picks an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=2 * 64 * 1024,
        )
        self._started_at = time.time()
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, release.

        Safe to call more than once.  Order matters: flip the draining
        flag (new requests get 503), wait for admitted requests to
        complete (bounded by ``drain_grace_s``), then stop the listener,
        shut down the dispatcher executors, and close every tenant
        database — which in turn shuts down the tenants' pooled GMDJ
        executors via ``Database.close()``.
        """
        if self._draining:
            return
        self._draining = True
        await self.admission.quiesce(timeout=self.config.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.pools.shutdown(wait=True)
        self.tenants.close_all()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body
                    )
                except HttpError as error:
                    writer.write(json_response(
                        error.status, {"error": error.message},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._dispatch(request)
                self._observe(status)
                writer.write(json_response(
                    status, payload, keep_alive=request.keep_alive,
                ))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _observe(self, status: int) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        registry = get_registry()
        registry.counter("serve.requests").inc()
        registry.counter(f"serve.status.{status}").inc()

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> tuple[int, dict]:
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                return 200, self._healthz()
            if route == ("GET", "/metrics"):
                return 200, self._metrics()
            if request.path in ("/query", "/batch", "/ddl", "/explain"):
                if request.method != "POST":
                    return 405, {"error": f"{request.path} wants POST"}
                if self._draining:
                    return 503, {"error": "server is draining"}
                return 200, await self._admitted(request)
            return 404, {"error": f"no route for {request.path}"}
        except HttpError as error:
            return error.status, {"error": error.message}
        except QueueFull as error:
            return 429, {"error": str(error)}
        except TenantLimitError as error:
            return 429, {"error": str(error)}
        except DeadlineExceeded as error:
            return 408, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - the service must answer
            return 500, {"error": f"{type(error).__name__}: {error}"}

    # -- admitted endpoints --------------------------------------------------

    async def _admitted(self, request: HttpRequest) -> dict:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        tenant = self.tenants.get(body.get("tenant", "default"))
        deadline_s = self._deadline_seconds(request, body)
        if request.path == "/query":
            sql = self._sql(body)
            options = parse_options(body.get("options"), self.config.options)
            if self.config.batch_window_ms > 0:
                return await self._through_window(
                    tenant, sql, options, deadline_s
                )
            worker = functools.partial(tenant.run_query, sql, options)
        elif request.path == "/batch":
            sqls = self._sqls(body)
            options = parse_options(body.get("options"), self.config.options)
            worker = functools.partial(tenant.run_batch, sqls, options)
        elif request.path == "/explain":
            sql = self._sql(body)
            options = parse_options(body.get("options"), self.config.options)
            worker = functools.partial(
                tenant.run_explain, sql, options,
                bool(body.get("analyze", False)),
            )
        else:  # /ddl
            statement = body.get("statement")
            worker = functools.partial(tenant.run_ddl, statement)
        return await self._run_with_slot(worker, deadline_s)

    def _sql(self, body: dict) -> str:
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HttpError(400, "request needs a non-empty 'sql' string")
        return sql

    def _sqls(self, body: dict) -> list[str]:
        sqls = body.get("queries")
        if (not isinstance(sqls, list) or not sqls
                or not all(isinstance(s, str) and s.strip() for s in sqls)):
            raise HttpError(
                400, "batch needs 'queries': a non-empty list of SQL strings"
            )
        return sqls

    # -- batch window --------------------------------------------------------

    async def _through_window(self, tenant, sql: str,
                              options: QueryOptions,
                              deadline_s: float | None) -> dict:
        """Hold a ``/query`` in the open batch window and await its slice.

        Requests landing within ``batch_window_ms`` of each other with
        the same tenant and options flush as one MQO batch under a
        single admission slot; each waiter gets a per-query payload cut
        from the batch response.  Failures fan out to every waiter.
        """
        loop = asyncio.get_running_loop()
        key = (tenant.name, options)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _BatchWindow(
                tenant=tenant, options=options
            )
            loop.call_later(
                self.config.batch_window_ms / 1000.0,
                lambda: loop.create_task(self._flush_window(key)),
            )
        window.sqls.append(sql)
        if deadline_s is not None:
            window.deadline_s = (
                deadline_s if window.deadline_s is None
                else max(window.deadline_s, deadline_s)
            )
        future: asyncio.Future = loop.create_future()
        window.futures.append(future)
        return await future

    async def _flush_window(self, key: tuple) -> None:
        window = self._windows.pop(key, None)
        if window is None:
            return
        worker = functools.partial(
            window.tenant.run_batch, window.sqls, window.options
        )
        try:
            payload = await self._run_with_slot(worker, window.deadline_s)
        except BaseException as error:  # noqa: BLE001 - fan out to waiters
            for future in window.futures:
                if not future.done():
                    future.set_exception(error)
            return
        batch = payload.get("batch", {})
        for index, future in enumerate(window.futures):
            if future.done():
                continue
            member = dict(payload["results"][index])
            member.update(
                tenant=payload["tenant"],
                served_by="batch",
                batch_queries=batch.get("queries"),
                batch_scans_saved=batch.get("scans_saved"),
            )
            future.set_result(member)

    def _deadline_seconds(self, request: HttpRequest, body: dict) -> float | None:
        raw = body.get("deadline_ms", request.headers.get("x-repro-deadline-ms"))
        if raw is None:
            raw = self.config.deadline_ms
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise HttpError(400, f"bad deadline_ms {raw!r}") from None
        if deadline_ms <= 0:
            return None  # explicit 0/negative disables the deadline
        return deadline_ms / 1000.0

    async def _run_with_slot(self, worker, deadline_s: float | None) -> dict:
        """Admission, dispatch, and deadline enforcement for one request."""
        loop = asyncio.get_running_loop()
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        slot = self.admission.slot()
        try:
            await asyncio.wait_for(slot.__aenter__(), timeout=deadline_s)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                "deadline exceeded while queued for a worker"
            ) from None
        context = contextvars.copy_context()
        future = loop.run_in_executor(
            self._executor, functools.partial(context.run, worker, deadline)
        )
        try:
            left = (
                None if deadline is None else deadline - time.monotonic()
            )
            payload = await asyncio.wait_for(asyncio.shield(future), left)
        except asyncio.TimeoutError:
            if future.cancel():
                # Never started: free the slot immediately.
                slot.release()
            else:
                # Executing: the thread keeps the slot until it is done,
                # and its result (or error) is deliberately discarded.
                future.add_done_callback(
                    lambda finished: (_swallow(finished), slot.release())
                )
            raise DeadlineExceeded("deadline exceeded during execution") from None
        except BaseException:
            slot.release()
            raise
        slot.release()
        return payload

    # -- observe-only endpoints ----------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
            "tenants": len(self.tenants),
            "admission": self.admission.snapshot(),
        }

    def _metrics(self) -> dict:
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "draining": self._draining,
            "admission": self.admission.snapshot(),
            "statuses": {
                str(status): count
                for status, count in sorted(self.statuses.items())
            },
            "tenants": {
                name: tenant.stats() for name, tenant in self.tenants.items()
            },
            "registry": get_registry().to_json(),
        }


def _swallow(future) -> None:
    """Retrieve an abandoned future's outcome so it never warns."""
    if not future.cancelled():
        future.exception()


async def _run_until_signalled(service: QueryService) -> None:
    import signal

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await service.start()
    print(f"repro serve listening on "
          f"http://{service.config.host}:{service.port} "
          f"(workers={service.config.workers} "
          f"queue_depth={service.config.queue_depth})",
          flush=True)
    serving = asyncio.ensure_future(service.serve_forever())
    await stop.wait()
    print("repro serve draining ...", flush=True)
    await service.shutdown()
    serving.cancel()
    try:
        await serving
    except asyncio.CancelledError:
        pass


def run_server(config: ServeConfig, data_dir=None) -> int:
    """Blocking entry point for ``repro serve`` (returns an exit code)."""
    service = QueryService(config)
    if data_dir is not None:
        from repro.cli import load_data_directory
        from repro.engine.database import Database

        db = Database(cache_size=config.cache_size)
        names = load_data_directory(db, data_dir)
        service.tenants.adopt("default", db)
        print(f"loaded {len(names)} table(s) into tenant 'default': "
              f"{', '.join(names)}", flush=True)
    try:
        asyncio.run(_run_until_signalled(service))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    return 0
