"""A writer-preferring reader-writer lock for per-tenant databases.

The serve tier's consistency contract is *concurrent reads, exclusive
DDL*: any number of ``/query`` and ``/explain`` requests may execute
against one tenant simultaneously (the caches and the rollup store are
internally thread-safe for that), but a ``/ddl`` mutation must observe
a quiescent database — otherwise a reader that computed its result from
the old table state could store that result into the plan cache *after*
the DDL's invalidation ran, leaving a stale entry that later requests
would be served from.  Taking the write lock around mutation+invalidate
and the read lock around lookup+execute+store excludes exactly that
interleaving.

The lock is a plain :mod:`threading` primitive, not an asyncio one,
because the serve tier acquires it *inside* the worker thread that runs
the request (the event loop never blocks on it), and because it lets
threaded test harnesses drive the identical locking discipline without
an event loop.

Writer preference: once a writer is waiting, new readers queue behind
it.  A stream of dashboard reads can therefore never starve a DDL, at
the cost of briefly idling readers — the right trade for a store whose
writes are rare and invalidating.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class LockTimeout(Exception):
    """A lock acquisition exceeded its deadline."""


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer (not reentrant)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> None:
        """Block until no writer is active or waiting; raises
        :class:`LockTimeout` when ``timeout`` (seconds) elapses first."""
        with self._condition:
            if not self._condition.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout=timeout,
            ):
                raise LockTimeout("read lock not acquired within deadline")
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read(self, timeout: float | None = None):
        self.acquire_read(timeout=timeout)
        try:
            yield self
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> None:
        """Block until the lock is exclusively held; on timeout the
        waiting claim is withdrawn (queued readers wake) and
        :class:`LockTimeout` is raised."""
        with self._condition:
            self._writers_waiting += 1
            try:
                if not self._condition.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout=timeout,
                ):
                    raise LockTimeout(
                        "write lock not acquired within deadline"
                    )
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
                if not self._writer_active:
                    # Withdrawn claim: let readers blocked on our
                    # preference through.
                    self._condition.notify_all()

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write(self, timeout: float | None = None):
        self.acquire_write(timeout=timeout)
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """Current holder counts (for ``/metrics`` and tests)."""
        with self._condition:
            return {
                "readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
