"""repro.serve — the async multi-tenant query service.

The serving tier that turns the in-process engine into a network
service: a stdlib-only asyncio HTTP/1.1 server exposing ``/query``,
``/ddl``, ``/explain``, ``/metrics`` and ``/healthz`` as JSON endpoints
over per-tenant :class:`~repro.engine.database.Database` instances,
with bounded-queue admission control, per-request deadlines, graceful
drain, and reader-writer request ordering per tenant.

Start it from the CLI::

    python -m repro serve --port 8125 --workers 4 --queue-depth 64

or embed it::

    from repro.serve import QueryService, ServeConfig

    service = QueryService(ServeConfig(port=0))   # ephemeral port
    await service.start()
    ...
    await service.shutdown()

The module layout mirrors the request path: :mod:`~repro.serve.http`
(transport) → :mod:`~repro.serve.admission` (queueing and shedding) →
:mod:`~repro.serve.service` (routing, deadlines, drain) →
:mod:`~repro.serve.state` (per-tenant engines and the tiered
cache/rollup/execute serving path) over :mod:`~repro.serve.locks`
(concurrent-read / exclusive-DDL ordering).
"""

from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.http import HttpError, HttpRequest, json_response, read_request
from repro.serve.locks import LockTimeout, ReadWriteLock
from repro.serve.service import (
    DEFAULT_PORT,
    QueryService,
    ServeConfig,
    run_server,
)
from repro.serve.state import (
    DeadlineExceeded,
    Tenant,
    TenantLimitError,
    TenantRegistry,
    apply_ddl,
    parse_options,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_PORT",
    "DeadlineExceeded",
    "HttpError",
    "HttpRequest",
    "LockTimeout",
    "QueryService",
    "QueueFull",
    "ReadWriteLock",
    "ServeConfig",
    "Tenant",
    "TenantLimitError",
    "TenantRegistry",
    "apply_ddl",
    "json_response",
    "parse_options",
    "read_request",
    "run_server",
]
