"""Per-tenant serving state and the tiered request execution path.

Each tenant is one :class:`~repro.engine.database.Database` plus the
:class:`~repro.serve.locks.ReadWriteLock` that orders its requests:
queries and explains run under the shared read lock, DDL under the
exclusive write lock.  The functions here are the bodies the service
dispatches to worker threads — everything inside them is synchronous
and thread-safe; the asyncio layer above never touches tenant state
directly.

A query request flows through the serving tiers in order, all inside
one read-lock hold:

1. **result cache** — exact (plan text, options) key, served in
   microseconds;
2. **rollup store** — semantic reuse of materialized GMDJ outputs
   (exact signature or subsumption), zero detail scans on a hit;
3. **execution** — the normal planner/kernel path, whose pooled
   partitioned evaluation reuses the tenant database's persistent
   executors (:class:`~repro.gmdj.pool.PoolRegistry`).

Which tier answered is read off the request's private metrics registry
(:class:`~repro.obs.metrics.metrics_scope` isolates it from interleaved
requests).  Every query also runs under its own tracer, and the count
of ``detail_scan`` spans plus the request's IOStats delta ride along in
the response — so a client, or the CI smoke leg, can verify the
zero-detail-scan invariant for rollup-served requests over plain HTTP.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.options import QueryOptions
from repro.errors import ConfigurationError, ReproError
from repro.obs.metrics import metrics_scope
from repro.obs.tracer import tracing
from repro.serve.locks import LockTimeout, ReadWriteLock
from repro.storage.iostats import collect
from repro.storage.types import DataType


class DeadlineExceeded(Exception):
    """The request's deadline passed before its work completed."""


class TenantLimitError(Exception):
    """Creating one more tenant would exceed the configured cap."""


_TENANT_NAME = re.compile(r"^[A-Za-z0-9_.\-]{1,64}$")

#: QueryOptions fields a request body may set; everything else
#: (``trace`` above all — tracing is the server's decision) is rejected.
OPTION_FIELDS = frozenset({
    "strategy", "mode", "partitions", "workers", "chunk_budget",
    "chunk_size", "backend", "use_cache", "lint", "rollup", "mqo",
})


def parse_options(payload, defaults: QueryOptions) -> QueryOptions:
    """Build the request's QueryOptions over the server defaults.

    ``payload`` is the request body's ``options`` object (or None).
    Unknown keys raise — a typo silently falling back to defaults would
    make a load test measure the wrong engine.
    """
    if payload is None:
        return defaults
    if not isinstance(payload, dict):
        raise ConfigurationError("options must be a JSON object")
    unknown = set(payload) - OPTION_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown option field(s) {sorted(unknown)}; "
            f"allowed: {sorted(OPTION_FIELDS)}"
        )
    import dataclasses

    return dataclasses.replace(defaults, **payload)


def remaining(deadline: float | None) -> float | None:
    """Seconds left until ``deadline`` (monotonic); raises when spent."""
    if deadline is None:
        return None
    left = deadline - time.monotonic()
    if left <= 0:
        raise DeadlineExceeded("deadline exceeded before execution")
    return left


def _served_by(registry) -> str:
    """Classify which serving tier answered, from the request metrics."""
    counters = registry.counters
    if "cache.result_hits" in counters and counters["cache.result_hits"].value:
        return "cache"
    hits = sum(
        counters[name].value
        for name in ("rollup.exact_hits", "rollup.subsume_hits")
        if name in counters
    )
    if hits:
        misses = counters.get("rollup.misses")
        return "rollup" if misses is None or not misses.value else "mixed"
    return "execute"


@dataclass
class Tenant:
    """One tenant's database plus its request-ordering lock."""

    name: str
    db: Database
    lock: ReadWriteLock = field(default_factory=ReadWriteLock)
    created_at: float = field(default_factory=time.time)
    queries: int = 0
    ddl: int = 0

    # -- request bodies (run inside worker threads) --------------------------

    def run_query(self, sql: str, options: QueryOptions,
                  deadline: float | None = None) -> dict:
        """Tiered query execution under the shared read lock."""
        try:
            self.lock.acquire_read(timeout=remaining(deadline))
        except LockTimeout as error:
            raise DeadlineExceeded(str(error)) from None
        try:
            remaining(deadline)  # a read that queued past its budget
            with metrics_scope() as metrics:
                with collect() as stats, tracing() as tracer:
                    started = time.perf_counter()
                    result = self.db.execute_sql(sql, options)
                    elapsed = time.perf_counter() - started
            detail_scans = sum(
                1 for span_ in tracer.trace().walk()
                if span_.kind == "detail_scan"
            )
            self.queries += 1
            return {
                "tenant": self.name,
                "columns": list(result.schema.names),
                "rows": [list(row) for row in result.rows],
                "row_count": len(result),
                "elapsed_ms": round(elapsed * 1000, 3),
                "served_by": _served_by(metrics),
                "detail_scans": detail_scans,
                "io": {
                    key: value
                    for key, value in stats.snapshot().items() if value
                },
                "metrics": {
                    "counters": {
                        name: counter.value
                        for name, counter in sorted(metrics.counters.items())
                    },
                },
            }
        finally:
            self.lock.release_read()

    def run_batch(self, sqls: list[str], options: QueryOptions,
                  deadline: float | None = None) -> dict:
        """Execute a ``/batch`` request with cross-query scan sharing.

        One read-lock hold covers the whole batch (members share a
        catalog snapshot — the MQO merge requires it).  The response
        reconciles by construction: each item's ``io`` and
        ``detail_scans`` are its fractional attribution from the batch
        engine, and their sums equal the batch-level totals measured
        here, so ``/metrics`` stays consistent with per-request
        certificates.
        """
        try:
            self.lock.acquire_read(timeout=remaining(deadline))
        except LockTimeout as error:
            raise DeadlineExceeded(str(error)) from None
        try:
            remaining(deadline)
            with metrics_scope() as metrics:
                with collect() as stats, tracing() as tracer:
                    started = time.perf_counter()
                    batch = self.db.execute_sql_batch(sqls, options)
                    elapsed = time.perf_counter() - started
            detail_scans = sum(
                1 for span_ in tracer.trace().walk()
                if span_.kind == "detail_scan"
            )
            self.queries += len(sqls)
            report = batch.report
            results = []
            for item in batch.items:
                results.append({
                    "index": item.index,
                    "columns": list(item.result.schema.names),
                    "rows": [list(row) for row in item.result.rows],
                    "row_count": len(item.result),
                    "elapsed_ms": round(item.elapsed_seconds * 1000, 3),
                    "group": item.group_id,
                    "shared": item.shared,
                    "detail_scans": item.detail_scans,
                    "io": item.io_json(),
                })
            return {
                "tenant": self.name,
                "results": results,
                "batch": report.to_json(),
                "scans_saved": report.scans_saved,
                "elapsed_ms": round(elapsed * 1000, 3),
                "detail_scans": detail_scans,
                "io": {
                    key: value
                    for key, value in stats.snapshot().items() if value
                },
                "metrics": {
                    "counters": {
                        name: counter.value
                        for name, counter in sorted(metrics.counters.items())
                    },
                },
            }
        finally:
            self.lock.release_read()

    def run_explain(self, sql: str, options: QueryOptions,
                    analyze: bool = False,
                    deadline: float | None = None) -> dict:
        """EXPLAIN (plan only) or EXPLAIN ANALYZE as JSON, read-locked."""
        try:
            self.lock.acquire_read(timeout=remaining(deadline))
        except LockTimeout as error:
            raise DeadlineExceeded(str(error)) from None
        try:
            remaining(deadline)
            query = self.db.sql(sql)
            if not analyze:
                return {
                    "tenant": self.name,
                    "plan": self.db.explain(query, options),
                }
            from repro.obs.explain import explain_analyze_json

            with metrics_scope():
                payload = explain_analyze_json(self.db, query, options)
            payload["tenant"] = self.name
            return payload
        finally:
            self.lock.release_read()

    def run_ddl(self, statement: dict,
                deadline: float | None = None) -> dict:
        """Apply one mutation under the exclusive write lock."""
        try:
            self.lock.acquire_write(timeout=remaining(deadline))
        except LockTimeout as error:
            raise DeadlineExceeded(str(error)) from None
        try:
            remaining(deadline)
            payload = apply_ddl(self.db, statement)
            self.ddl += 1
            payload["tenant"] = self.name
            return payload
        finally:
            self.lock.release_write()

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "tables": sorted(self.db.catalog.table_names()),
            "queries": self.queries,
            "ddl": self.ddl,
            "cache": self.db.cache.stats(),
            "rollups": self.db.rollups.stats(),
            "lock": self.lock.snapshot(),
        }


def _columns(spec) -> list[tuple[str, DataType]]:
    """Parse ``[["K", "integer"], ...]`` column declarations."""
    if not isinstance(spec, list) or not spec:
        raise ConfigurationError("columns must be a non-empty list")
    columns = []
    for item in spec:
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not isinstance(item[0], str)):
            raise ConfigurationError(
                "each column must be a [name, type] pair"
            )
        name, dtype = item
        try:
            columns.append((name, DataType(str(dtype).lower())))
        except ValueError:
            raise ConfigurationError(
                f"unknown column type {dtype!r}; choose one of "
                f"{[d.value for d in DataType]}"
            ) from None
    return columns


def _rows(spec) -> list[tuple]:
    if spec is None:
        return []
    if not isinstance(spec, list):
        raise ConfigurationError("rows must be a list of row arrays")
    return [tuple(row) for row in spec]


def apply_ddl(db: Database, statement) -> dict:
    """Execute one ``/ddl`` statement; returns its result payload.

    Supported ops: ``create_table`` (name, columns, rows?), ``insert``
    (name, rows), ``create_index`` (table, attribute), ``drop_indexes``
    (table?), ``drop_table`` (name).
    """
    if not isinstance(statement, dict):
        raise ConfigurationError("ddl statement must be a JSON object")
    op = statement.get("op")
    if op == "create_table":
        name = _required(statement, "name")
        relation = db.create_table(
            name, _columns(statement.get("columns")),
            _rows(statement.get("rows")),
        )
        return {"op": op, "table": name, "row_count": len(relation)}
    if op == "insert":
        name = _required(statement, "name")
        rows = _rows(statement.get("rows"))
        if not rows:
            raise ConfigurationError("insert needs a non-empty rows list")
        relation = db.insert(name, rows)
        return {"op": op, "table": name, "inserted": len(rows),
                "row_count": len(relation)}
    if op == "create_index":
        table = _required(statement, "table")
        attribute = _required(statement, "attribute")
        db.create_index(table, attribute)
        return {"op": op, "table": table, "attribute": attribute}
    if op == "drop_indexes":
        dropped = db.drop_indexes(statement.get("table"))
        return {"op": op, "dropped": dropped}
    if op == "drop_table":
        name = _required(statement, "name")
        db.cache.invalidate()
        db.rollups.invalidate()
        db.catalog.drop_table(name)
        return {"op": op, "table": name}
    raise ConfigurationError(
        f"unknown ddl op {op!r}; choose one of create_table, insert, "
        f"create_index, drop_indexes, drop_table"
    )


def _required(statement: dict, key: str) -> str:
    value = statement.get(key)
    if not isinstance(value, str) or not value:
        raise ConfigurationError(f"ddl statement needs a string {key!r}")
    return value


class TenantRegistry:
    """Get-or-create tenants by name, bounded by ``max_tenants``."""

    def __init__(self, max_tenants: int = 16, cache_size: int = 128):
        if max_tenants < 1:
            raise ConfigurationError(
                f"max_tenants must be >= 1, got {max_tenants}"
            )
        self.max_tenants = max_tenants
        self.cache_size = cache_size
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> Tenant:
        """The tenant, created on first reference."""
        if not _TENANT_NAME.match(name or ""):
            raise ReproError(
                f"invalid tenant name {name!r} (1-64 chars of "
                f"[A-Za-z0-9_.-])"
            )
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                if len(self._tenants) >= self.max_tenants:
                    raise TenantLimitError(
                        f"tenant limit reached ({self.max_tenants}); "
                        f"not creating {name!r}"
                    )
                tenant = self._tenants[name] = Tenant(
                    name=name, db=Database(cache_size=self.cache_size)
                )
            return tenant

    def adopt(self, name: str, db: Database) -> Tenant:
        """Install a pre-built database (the CLI's ``--data`` tenant)."""
        with self._lock:
            tenant = self._tenants[name] = Tenant(name=name, db=db)
            return tenant

    def items(self) -> list[tuple[str, Tenant]]:
        with self._lock:
            return sorted(self._tenants.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def close_all(self) -> None:
        """Quiesce and close every tenant database (drain's last step)."""
        for _, tenant in self.items():
            with tenant.lock.write():
                tenant.db.close()
