"""Deterministic workload generators (TPC-R style and IP-flow warehouse)."""

from repro.data.netflow import (
    NetflowConfig,
    build_netflow_catalog,
    generate_flows,
    generate_hours,
    generate_users,
)
from repro.data.rng import make_rng
from repro.data.tpcr import (
    TpcrSizes,
    build_tpcr_catalog,
    generate_customer,
    generate_lineitem,
    generate_nation,
    generate_orders,
    generate_part,
    generate_region,
    generate_supplier,
)

__all__ = [
    "NetflowConfig",
    "TpcrSizes",
    "build_netflow_catalog",
    "build_tpcr_catalog",
    "generate_customer",
    "generate_flows",
    "generate_hours",
    "generate_lineitem",
    "generate_nation",
    "generate_orders",
    "generate_part",
    "generate_region",
    "generate_supplier",
    "generate_users",
    "make_rng",
]
