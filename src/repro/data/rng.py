"""Deterministic random sources for data generation.

Every generator in :mod:`repro.data` derives its stream from a caller-
supplied seed so that workloads are exactly reproducible across runs and
machines — the property the paper gets from TPC-R's ``dbgen``.
"""

from __future__ import annotations

import random


def make_rng(seed: int, stream: str = "") -> random.Random:
    """A reproducible ``random.Random`` for one named stream.

    Distinct ``stream`` labels decorrelate the tables generated from one
    master seed, so growing one table never perturbs another.
    """
    return random.Random(f"{seed}/{stream}")


def pick_weighted(rng: random.Random, choices: list[tuple[object, float]]):
    """Choose among ``(value, weight)`` pairs."""
    values = [value for value, _ in choices]
    weights = [weight for _, weight in choices]
    return rng.choices(values, weights=weights, k=1)[0]
