"""The paper's motivating IP-flow data warehouse (Section 2.3).

Schema::

    Flow (SourceIP, DestIP, Protocol, StartTime, EndTime, NumPackets,
          NumBytes)
    Hours(HourDescription, StartInterval, EndInterval)
    User (AccountNumber, Name, IPAddress)

``StartTime``/intervals are integer minutes; each Hours row covers one
60-minute interval.  Flows are generated with a configurable share of
HTTP traffic, a configurable set of "interesting" destination IPs (the
167/168/169 addresses of Examples 2.2 and 2.3), and user IPs drawn from
the User table so that the activity queries (Example 3.3) have non-empty
answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.types import DataType

SPECIAL_DESTS = ("167.167.167.0", "168.168.168.0", "169.169.169.0")
PROTOCOLS = ("HTTP", "FTP", "SMTP", "DNS", "SSH")


@dataclass
class NetflowConfig:
    """Knobs for one generated warehouse."""

    flows: int = 5000
    hours: int = 24
    users: int = 50
    extra_source_ips: int = 30  # IPs with traffic but no user account
    http_share: float = 0.55
    special_dest_share: float = 0.15
    seed: int = 7
    protocols: tuple = field(default=PROTOCOLS)


def generate_hours(count: int) -> Relation:
    """``count`` consecutive 60-minute intervals starting at minute 0."""
    rows = [(i + 1, i * 60, (i + 1) * 60) for i in range(count)]
    return Relation.from_columns(
        [("HourDescription", DataType.INTEGER),
         ("StartInterval", DataType.INTEGER),
         ("EndInterval", DataType.INTEGER)],
        rows, name="Hours",
    )


def generate_users(count: int, seed: int = 7) -> Relation:
    rows = [
        (1000 + i, f"user-{i}", f"10.1.{i // 250}.{i % 250}")
        for i in range(count)
    ]
    return Relation.from_columns(
        [("AccountNumber", DataType.INTEGER), ("Name", DataType.STRING),
         ("IPAddress", DataType.STRING)],
        rows, name="User",
    )


def generate_flows(config: NetflowConfig, user_ips: list[str]) -> Relation:
    rng = make_rng(config.seed, "flows")
    horizon = config.hours * 60
    source_pool = list(user_ips) + [
        f"10.9.{i // 250}.{i % 250}" for i in range(config.extra_source_ips)
    ]
    # Each source talks to its own subset of the special destinations, so
    # the Example 2.3 query ("traffic to 168 but none to 167/169") has a
    # non-trivial answer instead of every busy IP hitting all three.
    allowed_specials = {
        ip: rng.sample(SPECIAL_DESTS, rng.randint(1, len(SPECIAL_DESTS)))
        for ip in source_pool
    }
    rows = []
    for _ in range(config.flows):
        start = rng.randrange(horizon)
        duration = rng.randint(1, 30)
        protocol = (
            "HTTP" if rng.random() < config.http_share
            else rng.choice([p for p in config.protocols if p != "HTTP"])
        )
        source = rng.choice(source_pool)
        dest = (
            rng.choice(allowed_specials[source])
            if rng.random() < config.special_dest_share
            else f"172.16.{rng.randint(0, 16)}.{rng.randint(1, 250)}"
        )
        rows.append(
            (
                source,
                dest,
                protocol,
                start,
                start + duration,
                rng.randint(1, 2000),
                rng.randint(64, 1_500_000),
            )
        )
    return Relation.from_columns(
        [("SourceIP", DataType.STRING), ("DestIP", DataType.STRING),
         ("Protocol", DataType.STRING), ("StartTime", DataType.INTEGER),
         ("EndTime", DataType.INTEGER), ("NumPackets", DataType.INTEGER),
         ("NumBytes", DataType.INTEGER)],
        rows, name="Flow",
    )


def build_netflow_catalog(config: NetflowConfig | None = None,
                          indexes: bool = True) -> Catalog:
    """Generate the complete IP-flow warehouse of Section 2.3."""
    config = config or NetflowConfig()
    catalog = Catalog()
    users = generate_users(config.users, config.seed)
    catalog.create_table("User", users)
    catalog.create_table("Hours", generate_hours(config.hours))
    user_ips = users.column("IPAddress")
    catalog.create_table("Flow", generate_flows(config, user_ips))
    if indexes:
        catalog.create_hash_index("Flow", ["SourceIP"])
        catalog.create_hash_index("Flow", ["DestIP"])
        catalog.create_hash_index("User", ["IPAddress"])
        catalog.create_sorted_index("Flow", "StartTime")
    return catalog
