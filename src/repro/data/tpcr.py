"""A deterministic, scaled-down TPC-R style data generator.

The paper derived its four test databases (50–200 MB) from the TPC(R)
``dbgen`` program.  This module generates the same table shapes at
laptop scale: the *ratios* between outer-block and inner-block sizes in
each experiment match the paper's (e.g. Figure 2's 1000-row outer block
against 300k–1.2M-row inner blocks becomes 1000 against scaled-down inner
tables), which is what the reproduced performance shapes depend on.

Value distributions follow dbgen's spirit: uniform keys, skew-free
numeric attributes over fixed ranges, small categorical domains.  Dates
are encoded as integer day numbers to keep the type system simple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.types import DataType

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)


def generate_nation() -> Relation:
    """The fixed 25-row nation table."""
    return Relation.from_columns(
        [("nationkey", DataType.INTEGER), ("name", DataType.STRING),
         ("regionkey", DataType.INTEGER)],
        [(i, name, i % 5) for i, name in enumerate(NATIONS)],
        name="nation",
    )


def generate_region() -> Relation:
    return Relation.from_columns(
        [("regionkey", DataType.INTEGER), ("name", DataType.STRING)],
        [(0, "AFRICA"), (1, "AMERICA"), (2, "ASIA"), (3, "EUROPE"),
         (4, "MIDDLE EAST")],
        name="region",
    )


def generate_customer(count: int, seed: int = 1) -> Relation:
    rng = make_rng(seed, "customer")
    rows = [
        (
            key,
            f"Customer#{key:09d}",
            rng.randrange(len(NATIONS)),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(SEGMENTS),
        )
        for key in range(1, count + 1)
    ]
    return Relation.from_columns(
        [("custkey", DataType.INTEGER), ("name", DataType.STRING),
         ("nationkey", DataType.INTEGER), ("acctbal", DataType.FLOAT),
         ("mktsegment", DataType.STRING)],
        rows, name="customer",
    )


def generate_orders(count: int, customer_count: int, seed: int = 1) -> Relation:
    rng = make_rng(seed, "orders")
    rows = [
        (
            key,
            rng.randint(1, customer_count),
            round(rng.uniform(850.0, 450000.0), 2),
            rng.randint(0, 2400),  # day number within the 1992–1998 window
            rng.choice(PRIORITIES),
        )
        for key in range(1, count + 1)
    ]
    return Relation.from_columns(
        [("orderkey", DataType.INTEGER), ("custkey", DataType.INTEGER),
         ("totalprice", DataType.FLOAT), ("orderdate", DataType.INTEGER),
         ("orderpriority", DataType.STRING)],
        rows, name="orders",
    )


def generate_part(count: int, seed: int = 1) -> Relation:
    rng = make_rng(seed, "part")
    rows = [
        (
            key,
            f"part {key}",
            rng.choice(BRANDS),
            round(900 + (key % 1000) + rng.uniform(0, 100), 2),
            rng.randint(1, 50),
        )
        for key in range(1, count + 1)
    ]
    return Relation.from_columns(
        [("partkey", DataType.INTEGER), ("name", DataType.STRING),
         ("brand", DataType.STRING), ("retailprice", DataType.FLOAT),
         ("size", DataType.INTEGER)],
        rows, name="part",
    )


def generate_supplier(count: int, seed: int = 1) -> Relation:
    rng = make_rng(seed, "supplier")
    rows = [
        (
            key,
            f"Supplier#{key:09d}",
            rng.randrange(len(NATIONS)),
            round(rng.uniform(-999.99, 9999.99), 2),
        )
        for key in range(1, count + 1)
    ]
    return Relation.from_columns(
        [("suppkey", DataType.INTEGER), ("name", DataType.STRING),
         ("nationkey", DataType.INTEGER), ("acctbal", DataType.FLOAT)],
        rows, name="supplier",
    )


def generate_lineitem(count: int, order_count: int, part_count: int,
                      supplier_count: int, seed: int = 1) -> Relation:
    rng = make_rng(seed, "lineitem")
    rows = [
        (
            rng.randint(1, order_count),
            rng.randint(1, part_count),
            rng.randint(1, supplier_count),
            rng.randint(1, 50),
            round(rng.uniform(900.0, 100000.0), 2),
            round(rng.uniform(0.0, 0.1), 2),
        )
        for _ in range(count)
    ]
    return Relation.from_columns(
        [("orderkey", DataType.INTEGER), ("partkey", DataType.INTEGER),
         ("suppkey", DataType.INTEGER), ("quantity", DataType.INTEGER),
         ("extendedprice", DataType.FLOAT), ("discount", DataType.FLOAT)],
        rows, name="lineitem",
    )


@dataclass
class TpcrSizes:
    """Row counts for one generated database."""

    customers: int = 1000
    orders: int = 10000
    lineitems: int = 20000
    parts: int = 2000
    suppliers: int = 100


def build_tpcr_catalog(sizes: TpcrSizes | None = None, seed: int = 1,
                       indexes: bool = True) -> Catalog:
    """Generate a full catalog with (optionally) the paper's indexes.

    "All important attributes were indexed in the experiments, except when
    explicitly dropped to study the stability of the algorithms" — the
    correlation keys get hash indexes here; drop them with
    ``catalog.drop_all_indexes()`` for the no-index runs.
    """
    sizes = sizes or TpcrSizes()
    catalog = Catalog()
    catalog.create_table("region", generate_region())
    catalog.create_table("nation", generate_nation())
    catalog.create_table("customer", generate_customer(sizes.customers, seed))
    catalog.create_table(
        "orders", generate_orders(sizes.orders, sizes.customers, seed)
    )
    catalog.create_table("part", generate_part(sizes.parts, seed))
    catalog.create_table("supplier", generate_supplier(sizes.suppliers, seed))
    catalog.create_table(
        "lineitem",
        generate_lineitem(sizes.lineitems, sizes.orders, sizes.parts,
                          sizes.suppliers, seed),
    )
    if indexes:
        catalog.create_hash_index("customer", ["custkey"])
        catalog.create_hash_index("orders", ["custkey"])
        catalog.create_hash_index("orders", ["orderkey"])
        catalog.create_hash_index("lineitem", ["orderkey"])
        catalog.create_hash_index("part", ["partkey"])
        catalog.create_hash_index("supplier", ["suppkey"])
    return catalog
