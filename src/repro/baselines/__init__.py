"""Baseline subquery evaluation strategies the paper compares against."""

from repro.baselines.join_unnest import JoinUnnester, evaluate_join_unnest
from repro.baselines.native import evaluate_native
from repro.baselines.nested_loop import LoopEvaluator, evaluate_naive

__all__ = [
    "JoinUnnester",
    "LoopEvaluator",
    "evaluate_join_unnest",
    "evaluate_naive",
    "evaluate_native",
]
