"""Tuple-iteration semantics — the naive nested-loop baseline.

This is the paper's "naive approach" (Section 1): for every outer tuple,
every subquery is re-evaluated with a full scan of its source.  Unlike the
reference evaluator in :mod:`repro.algebra.nested` (which is free to
short-circuit because it only defines semantics), this baseline is
deliberately exhaustive: it scans the complete inner relation per outer
tuple, because that is the behaviour whose cost the paper's experiments
measure for the "native" nested-loop mode on comparison-predicate queries
(Figure 3).

The smart variant with early termination and index-assisted correlation
lookups — the behaviour the paper attributes to the target DBMS's
specialized EXISTS/ALL algorithms — lives in :mod:`repro.baselines.native`.
Both share :class:`LoopEvaluator`, differing only in its switches.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.expressions import Column, Comparison, Expression, Literal
from repro.algebra.nested import (
    Environment,
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    SubqueryPredicate,
    Subquery,
    env_with_row,
    substitute_free,
)
from repro.algebra.operators import Operator, ScanTable
from repro.algebra.truth import Truth
from repro.algebra.expressions import And, Not, Or
from repro.errors import CardinalityError
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation, Row
from repro.storage.schema import Schema


class LoopEvaluator:
    """Nested-loop evaluation with configurable smartness.

    ``early_exit``   stop scanning an inner block as soon as the subquery
                     predicate's outcome is decided (EXISTS on first
                     match, ALL on first violation, ...).
    ``use_indexes``  when the inner block is a plain table scan and the
                     catalog holds a hash index matching an equality
                     correlation conjunct, probe the index instead of
                     scanning — the index-assisted correlation lookup of a
                     conventional engine.
    """

    def __init__(self, catalog: Catalog, early_exit: bool = False,
                 use_indexes: bool = False):
        self.catalog = catalog
        self.early_exit = early_exit
        self.use_indexes = use_indexes

    # -- entry point -------------------------------------------------------------

    def evaluate(self, query: Operator) -> Relation:
        """Evaluate a query, applying this loop strategy to every
        NestedSelect in the tree (wrappers like Project/OrderBy pass
        through unchanged)."""
        return self._rewrite(query).evaluate(self.catalog)

    def _rewrite(self, operator):
        from repro.algebra.operators import TableValue
        from repro.algebra.rewrite import map_children

        rebuilt = map_children(operator, self._rewrite)
        if isinstance(rebuilt, NestedSelect):
            return TableValue(self._evaluate_nested(rebuilt, {}))
        return rebuilt

    def _evaluate_nested(self, nested: NestedSelect, env: Environment) -> Relation:
        from repro.obs.tracer import span

        with span("NestedSelect", kind="nested_loop",
                  early_exit=self.early_exit,
                  use_indexes=self.use_indexes) as sp:
            child = nested.child
            if isinstance(child, NestedSelect):
                source = self._evaluate_nested(child, env)
            else:
                with span("outer", kind="materialize"):
                    source = child.evaluate(self.catalog)
            stats = IOStats.ambient()
            stats.record_scan(len(source))
            rows = []
            for row in source.rows:
                if self._predicate(
                    nested.predicate, source.schema, row, env
                ).is_true:
                    rows.append(row)
            stats.tuples_output += len(rows)
            sp.set(outer_rows=len(source), output_rows=len(rows))
            return Relation(source.schema, rows, validate=False)

    # -- predicate evaluation ------------------------------------------------------

    def _predicate(self, predicate: Expression, schema: Schema, row: Row,
                   env: Environment) -> Truth:
        stats = IOStats.ambient()
        if isinstance(predicate, SubqueryPredicate):
            return self._subquery_predicate(predicate, schema, row, env)
        if isinstance(predicate, And):
            left = self._predicate(predicate.left, schema, row, env)
            if left is Truth.FALSE:
                return Truth.FALSE
            return left.and_(self._predicate(predicate.right, schema, row, env))
        if isinstance(predicate, Or):
            left = self._predicate(predicate.left, schema, row, env)
            if left is Truth.TRUE:
                return Truth.TRUE
            return left.or_(self._predicate(predicate.right, schema, row, env))
        if isinstance(predicate, Not):
            return self._predicate(predicate.operand, schema, row, env).not_()
        stats.predicate_evals += 1
        return substitute_free(predicate, schema, env).bind(schema)(row)

    def _subquery_predicate(self, leaf: SubqueryPredicate, schema: Schema,
                            row: Row, env: Environment) -> Truth:
        inner_env = env_with_row(env, schema, row)
        if isinstance(leaf, Exists):
            return self._exists(leaf, inner_env)
        if isinstance(leaf, ScalarComparison):
            return self._scalar(leaf, schema, row, env, inner_env)
        if isinstance(leaf, QuantifiedComparison):
            return self._quantified(leaf, schema, row, env, inner_env)
        raise TypeError(f"unknown subquery predicate {leaf!r}")

    # -- inner block access ----------------------------------------------------------

    def _closed_predicate(self, predicate: Expression, schema: Schema,
                          env: Environment):
        """Compile a subquery-free predicate once per outer tuple.

        Returns a ``row -> Truth`` closure, or None when the predicate
        contains nested subquery leaves (those need per-row recursion).
        """
        from repro.algebra.nested import collect_subquery_predicates

        if collect_subquery_predicates(predicate):
            return None
        return substitute_free(predicate, schema, env).bind(schema)

    def _inner_rows(self, subquery: Subquery, env: Environment):
        """Yield (row, schema) for inner tuples satisfying the block's θ.

        The access path depends on ``use_indexes``: an equality correlation
        conjunct over an indexed attribute turns the scan into a probe.
        """
        stats = IOStats.ambient()
        source = subquery.source
        if self.use_indexes and isinstance(source, ScanTable):
            probed = self._try_index_probe(subquery, source, env)
            if probed is not None:
                yield from probed
                return
        relation = source.evaluate(self.catalog)
        stats.record_scan(len(relation))
        closed = self._closed_predicate(subquery.predicate, relation.schema, env)
        if closed is not None:
            for inner_row in relation.rows:
                stats.predicate_evals += 1
                if closed(inner_row).is_true:
                    yield inner_row, relation.schema
            return
        for inner_row in relation.rows:
            if self._predicate(
                subquery.predicate, relation.schema, inner_row, env
            ).is_true:
                yield inner_row, relation.schema

    def _try_index_probe(self, subquery: Subquery, source: ScanTable,
                         env: Environment):
        """Probe a catalog hash index for an equality correlation conjunct.

        Returns None when no usable index exists (caller falls back to a
        scan).  Only simple conjunctive predicates qualify — mirroring the
        restrictions of a conventional engine's index-correlation rewrite.
        """
        from repro.algebra.expressions import conjuncts_of

        table = self.catalog.table(source.table_name)
        alias_schema = source.schema(self.catalog)
        for conjunct in conjuncts_of(subquery.predicate):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for inner_side, outer_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(inner_side, Column):
                    continue
                if not alias_schema.has(inner_side.reference):
                    continue
                outer_refs = outer_side.references()
                if any(alias_schema.has(ref) for ref in outer_refs):
                    continue
                bare = alias_schema.field_of(inner_side.reference).name
                index = self.catalog.hash_index(source.table_name, (bare,))
                if index is None:
                    continue
                # Outer side must be closed by the environment.
                if not all(ref in env for ref in outer_refs):
                    continue
                empty = Schema(())
                value = substitute_free(outer_side, empty, env).bind(empty)(())
                candidates = index.probe((value,))
                closed = self._closed_predicate(
                    subquery.predicate, alias_schema, env
                )

                def generator():
                    stats = IOStats.ambient()
                    for stored_row in candidates:
                        if closed is not None:
                            stats.predicate_evals += 1
                            keep = closed(stored_row).is_true
                        else:
                            keep = self._predicate(
                                subquery.predicate, alias_schema, stored_row,
                                env,
                            ).is_true
                        if keep:
                            yield stored_row, alias_schema

                return generator()
        return None

    # -- the three predicate families ----------------------------------------------------

    def _exists(self, leaf: Exists, inner_env: Environment) -> Truth:
        found = False
        for _ in self._inner_rows(leaf.subquery, inner_env):
            found = True
            if self.early_exit:
                break
        if leaf.negated:
            return Truth.of(not found)
        return Truth.of(found)

    def _outer_value(self, leaf, schema: Schema, row: Row, env: Environment) -> Any:
        closed = substitute_free(leaf.outer, schema, env)
        return closed.bind(schema)(row)

    def _item_value(self, subquery: Subquery, inner_row: Row,
                    inner_schema: Schema, inner_env: Environment) -> Any:
        item = subquery.item
        if item is None and subquery.aggregate is not None:
            item = subquery.aggregate.argument
        if item is None:
            return None
        closed = substitute_free(item, inner_schema, inner_env)
        return closed.bind(inner_schema)(inner_row)

    def _scalar(self, leaf: ScalarComparison, schema, row, env, inner_env) -> Truth:
        subquery = leaf.subquery
        outer_value = self._outer_value(leaf, schema, row, env)
        empty = Schema(())
        if subquery.aggregate is not None:
            state = subquery.aggregate.make_accumulator()
            for inner_row, inner_schema in self._inner_rows(subquery, inner_env):
                state.add(self._item_value(subquery, inner_row, inner_schema,
                                           inner_env))
            return Comparison(
                leaf.op, Literal(outer_value), Literal(state.result())
            ).bind(empty)(())
        values = []
        for inner_row, inner_schema in self._inner_rows(subquery, inner_env):
            values.append(
                self._item_value(subquery, inner_row, inner_schema, inner_env)
            )
            if len(values) > 1:
                raise CardinalityError("scalar subquery returned multiple rows")
        scalar = values[0] if values else None
        return Comparison(leaf.op, Literal(outer_value), Literal(scalar)).bind(
            empty
        )(())

    def _quantified(self, leaf: QuantifiedComparison, schema, row, env,
                    inner_env) -> Truth:
        subquery = leaf.subquery
        outer_value = self._outer_value(leaf, schema, row, env)
        empty = Schema(())
        saw_any = False
        saw_unknown = False
        decided: Truth | None = None
        for inner_row, inner_schema in self._inner_rows(subquery, inner_env):
            saw_any = True
            value = self._item_value(subquery, inner_row, inner_schema, inner_env)
            verdict = Comparison(
                leaf.op, Literal(outer_value), Literal(value)
            ).bind(empty)(())
            if leaf.quantifier == "some":
                if verdict is Truth.TRUE:
                    decided = Truth.TRUE
                elif verdict is Truth.UNKNOWN:
                    saw_unknown = True
            else:
                if verdict is Truth.FALSE:
                    decided = Truth.FALSE
                elif verdict is Truth.UNKNOWN:
                    saw_unknown = True
            if decided is not None and self.early_exit:
                return decided
        if decided is not None:
            return decided
        if leaf.quantifier == "some":
            if not saw_any:
                return Truth.FALSE
            return Truth.UNKNOWN if saw_unknown else Truth.FALSE
        if not saw_any:
            return Truth.TRUE
        return Truth.UNKNOWN if saw_unknown else Truth.TRUE


def evaluate_naive(query: Operator, catalog: Catalog) -> Relation:
    """Evaluate with exhaustive tuple-iteration semantics (no smarts)."""
    return LoopEvaluator(catalog, early_exit=False, use_indexes=False).evaluate(query)
