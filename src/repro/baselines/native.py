"""The "native" baseline: a conventional engine's smart nested loop.

The paper's experiments ran the nested queries in a commercial DBMS's
native mode and observed three behaviours (Section 5):

* a **specialized EXISTS algorithm** — stop scanning the inner block at the
  first match (good on Figure 2's workload when indexes help, very poor
  without indexes on Figure 5);
* a **smart nested loop for ALL** — discard the outer tuple as soon as one
  inner tuple falsifies the comparison, "essentially a form of tuple
  completion" (the reason native wins the basic-GMDJ on Figure 4);
* **index-assisted correlation lookups** — equality correlation predicates
  probe an index on the inner table instead of scanning it.

:func:`evaluate_native` reproduces exactly those three behaviours on top of
the shared :class:`~repro.baselines.nested_loop.LoopEvaluator`.  Whether
indexes are used depends on what the catalog actually holds, so dropping
indexes (as the Figure 5 experiment does) degrades this baseline the same
way it degraded the paper's target DBMS.
"""

from __future__ import annotations

from repro.algebra.operators import Operator
from repro.baselines.nested_loop import LoopEvaluator
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation


def evaluate_native(query: Operator, catalog: Catalog,
                    use_indexes: bool = True) -> Relation:
    """Evaluate with early termination and (optionally) index probes."""
    evaluator = LoopEvaluator(catalog, early_exit=True, use_indexes=use_indexes)
    return evaluator.evaluate(query)
