"""Join/outer-join unnesting — the conventional baseline.

This implements the family of source-level unnesting algorithms the paper
compares against (Kim [17], Dayal [12], Ganski & Wong [15], Muralikrishna
[19, 20], magic decorrelation [24]): each subquery predicate in a
conjunctive WHERE clause is removed by rewriting it into a join against
the (locally filtered) subquery table:

* ``EXISTS``              → semi join on the correlation condition;
* ``NOT EXISTS``          → anti join;
* ``x φ_some S``          → semi join on correlation ∧ φ;
* ``x φ_all S``           → anti join on correlation ∧ (φ̄ ∨ NULL-escape) —
  the NULL-escape disjuncts are what keep three-valued logic right where
  the naive ``MAX`` rewrite fails;
* ``x φ (aggregate S)``   → group the subquery table on its correlation
  attributes, aggregate, **left outer join** (empty groups must yield
  NULL/0), filter — with ``COALESCE(count, 0)`` repairing the classic
  COUNT bug of Kim's algorithm.

Join methods model a 2002 commercial engine: equality correlations use a
hash join when the catalog holds an index on the inner attribute (standing
in for an index nested-loop join) and a sort-merge join otherwise;
non-equality correlations (the ``<>`` of Figure 4) have no better plan
than a nested-loop θ-join — which is why the paper measured 7+ hours for
this baseline on that workload.

Limitations (faithful to the literature): only conjunctive predicates are
unnested, subqueries may nest linearly but only with neighboring
correlation predicates, and disjunctions containing subqueries are
rejected — callers fall back to nested-loop evaluation, exactly as
conventional optimizers do.
"""

from __future__ import annotations

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import (
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    conjoin,
    conjuncts_of,
)
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    SubqueryPredicate,
    Subquery,
    collect_subquery_predicates,
)
from repro.algebra.operators import (
    GroupBy,
    Join,
    Operator,
    Project,
    Select,
    TableValue,
)
from repro.errors import TranslationError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.unnesting.normalize import push_down_negations


class JoinUnnester:
    """Rewrites and evaluates nested queries via joins/outer-joins."""

    def __init__(self, catalog: Catalog, use_indexes: bool = True):
        self.catalog = catalog
        self.use_indexes = use_indexes
        self._fresh = 0

    # -- entry point ---------------------------------------------------------------

    def evaluate(self, query: Operator) -> Relation:
        """Evaluate a query, unnesting every NestedSelect in the tree
        (wrappers like Project/OrderBy pass through unchanged)."""
        return self._rewrite(query).evaluate(self.catalog)

    def _rewrite(self, operator):
        from repro.algebra.rewrite import map_children

        rebuilt = map_children(operator, self._rewrite)
        if isinstance(rebuilt, NestedSelect):
            predicate = push_down_negations(rebuilt.predicate)
            base = rebuilt.child.evaluate(self.catalog)
            return TableValue(self._unnest_block(base, predicate))
        return rebuilt

    # -- block processing -------------------------------------------------------------

    def _unnest_block(self, base: Relation, predicate: Expression) -> Relation:
        plain, leaves = self._split_conjuncts(predicate)
        current = base
        base_schema = base.schema
        for leaf in leaves:
            current = self._apply_leaf(current, base_schema, leaf)
        if plain:
            current = Select(TableValue(current), conjoin(plain)).evaluate(
                self.catalog
            )
        return current

    def _split_conjuncts(self, predicate: Expression):
        plain: list[Expression] = []
        leaves: list[SubqueryPredicate] = []
        for conjunct in conjuncts_of(predicate):
            if isinstance(conjunct, SubqueryPredicate):
                leaves.append(conjunct)
            elif collect_subquery_predicates(conjunct):
                raise TranslationError(
                    "join unnesting requires conjunctive subquery "
                    "predicates; found a subquery under OR/NOT"
                )
            else:
                plain.append(conjunct)
        return plain, leaves

    # -- per-leaf rewrites -----------------------------------------------------------------

    def _apply_leaf(self, current: Relation, base_schema: Schema,
                    leaf: SubqueryPredicate) -> Relation:
        from repro.algebra.rewrite import qualify_references

        inner, local, correlated = self._prepare_inner(base_schema, leaf.subquery)
        if isinstance(leaf, Exists):
            return self._exists(current, inner, correlated, leaf.negated)
        # Join conditions mix outer and inner expressions over a combined
        # schema; qualify each against its home scope first (inner wins
        # for the item, the outer block for the operand).
        item = (
            qualify_references(leaf.subquery.item, inner.schema)
            if leaf.subquery.item is not None else None
        )
        outer = qualify_references(leaf.outer, current.schema)
        if isinstance(leaf, QuantifiedComparison):
            if leaf.quantifier == "some":
                condition = conjoin(
                    correlated + [Comparison(leaf.op, outer, item)]
                )
                return self._join(current, inner, condition, "semi")
            # ALL: anti join on "violates or is unknowable".
            violation = Comparison(leaf.op, outer, item).complemented()
            escape = violation | IsNull(outer) | IsNull(item)
            condition = conjoin(correlated + [escape])
            return self._join(current, inner, condition, "anti")
        if isinstance(leaf, ScalarComparison):
            if leaf.subquery.aggregate is not None:
                return self._aggregate_scalar(current, inner, correlated,
                                              leaf, outer)
            condition = conjoin(
                correlated + [Comparison(leaf.op, outer, item)]
            )
            return self._join(current, inner, condition, "semi")
        raise TranslationError(f"join unnesting cannot handle {leaf!r}")

    def _prepare_inner(self, base_schema: Schema, subquery: Subquery):
        """Materialize the subquery table with local filters applied.

        Returns ``(relation, local_conjuncts, correlated_conjuncts)``; the
        local filter is applied eagerly, correlation conjuncts become join
        conditions.  Linearly nested subqueries are unnested recursively —
        provided their correlations stay neighboring.
        """
        source = subquery.source
        inner_schema = source.schema(self.catalog)
        local: list[Expression] = []
        correlated: list[Expression] = []
        nested_parts: list[Expression] = []
        for conjunct in conjuncts_of(subquery.predicate):
            if isinstance(conjunct, SubqueryPredicate):
                for ref in conjunct.outer_references():
                    if not inner_schema.has(ref):
                        raise TranslationError(
                            "join unnesting cannot handle non-neighboring "
                            f"correlation reference {ref!r}"
                        )
                nested_parts.append(conjunct)
            elif collect_subquery_predicates(conjunct):
                raise TranslationError(
                    "join unnesting requires conjunctive subquery predicates"
                )
            else:
                refs = conjunct.references()
                if all(inner_schema.has(ref) for ref in refs):
                    local.append(conjunct)
                elif all(
                    inner_schema.has(ref) or base_schema.has(ref)
                    for ref in refs
                ):
                    from repro.algebra.rewrite import qualify_references

                    correlated.append(
                        qualify_references(conjunct, inner_schema)
                    )
                else:
                    raise TranslationError(
                        "join unnesting cannot handle non-neighboring "
                        f"correlation predicate {conjunct!r}"
                    )
        if nested_parts:
            inner_nested = NestedSelect(source, conjoin(local + nested_parts))
            relation = self.evaluate(inner_nested)
        else:
            plan: Operator = source
            if local:
                plan = Select(plan, conjoin(local))
            relation = plan.evaluate(self.catalog)
        return relation, local, correlated

    # -- join machinery -------------------------------------------------------------------

    def _join_method(self, current: Relation, inner: Relation,
                     condition: Expression) -> str:
        """Model the target engine's physical choice (see module docstring)."""
        from repro.algebra.analysis import factor_condition

        factored = factor_condition(condition, current.schema, inner.schema)
        if not factored.has_equality:
            return "nested"
        if self.use_indexes:
            return "hash"
        return "merge"

    def _join(self, current: Relation, inner: Relation,
              condition: Expression, kind: str) -> Relation:
        method = self._join_method(current, inner, condition)
        plan = Join(TableValue(current), TableValue(inner), condition,
                    kind=kind, method=method)
        return plan.evaluate(self.catalog)

    def _exists(self, current: Relation, inner: Relation,
                correlated: list[Expression], negated: bool) -> Relation:
        kind = "anti" if negated else "semi"
        if not correlated:
            # Uncorrelated EXISTS decides once for the whole block.
            nonempty = len(inner) > 0
            keep = (nonempty and not negated) or (not nonempty and negated)
            rows = current.rows if keep else []
            return Relation(current.schema, rows, validate=False)
        return self._join(current, inner, conjoin(correlated), kind)

    def _aggregate_scalar(self, current: Relation, inner: Relation,
                          correlated: list[Expression],
                          leaf: ScalarComparison,
                          outer: Expression) -> Relation:
        """Aggregate-then-outer-join (Muralikrishna), with the COUNT fix."""
        aggregate = leaf.subquery.aggregate
        assert aggregate is not None
        value_name = self._fresh_name("val")
        inner_schema = inner.schema
        group_keys: list[str] = []
        join_conjuncts: list[Expression] = []
        for conjunct in correlated:
            if not (isinstance(conjunct, Comparison) and conjunct.op == "="):
                raise TranslationError(
                    "aggregate unnesting needs equality correlation; found "
                    f"{conjunct!r}"
                )
            left_inner = isinstance(conjunct.left, Column) and inner_schema.has(
                conjunct.left.reference
            )
            inner_side, outer_side = (
                (conjunct.left, conjunct.right)
                if left_inner
                else (conjunct.right, conjunct.left)
            )
            if not isinstance(inner_side, Column) or not inner_schema.has(
                inner_side.reference
            ):
                raise TranslationError(
                    f"aggregate unnesting: no inner column in {conjunct!r}"
                )
            group_keys.append(inner_side.reference)
            join_conjuncts.append(
                Comparison("=", outer_side, Column(inner_side.reference))
            )
        from repro.algebra.rewrite import qualify_references

        argument = (
            qualify_references(aggregate.argument, inner_schema)
            if aggregate.argument is not None else None
        )
        spec = AggregateSpec(aggregate.function, argument, value_name,
                             aggregate.distinct)
        grouped = GroupBy(TableValue(inner), group_keys, [spec]).evaluate(
            self.catalog
        )
        if group_keys:
            method = "hash" if self.use_indexes else "merge"
            joined = Join(
                TableValue(current), TableValue(grouped),
                conjoin(join_conjuncts), kind="left", method=method,
            ).evaluate(self.catalog)
        else:
            # Uncorrelated: the single aggregate row applies to every tuple.
            padding = grouped.rows[0] if grouped.rows else (None,)
            joined = Relation(
                current.schema.concat(grouped.schema),
                [row + padding for row in current.rows],
                validate=False,
            )
        value_expr: Expression = Column(value_name)
        if aggregate.function == "count":
            value_expr = Coalesce(value_expr, Literal(0))
        filtered = Select(
            TableValue(joined), Comparison(leaf.op, outer, value_expr)
        ).evaluate(self.catalog)
        return Project(
            TableValue(filtered), list(current.schema.names)
        ).evaluate(self.catalog)

    def _fresh_name(self, kind: str) -> str:
        self._fresh += 1
        return f"__ju{kind}{self._fresh}"


def evaluate_join_unnest(query: Operator, catalog: Catalog,
                         use_indexes: bool = True) -> Relation:
    """Evaluate a nested query by conventional join/outer-join unnesting."""
    from repro.obs.tracer import span

    with span("join_unnest", kind="baseline", use_indexes=use_indexes) as sp:
        result = JoinUnnester(catalog, use_indexes=use_indexes).evaluate(query)
        sp.set(output_rows=len(result))
        return result
