"""Scalar and predicate expressions.

Expressions form an immutable AST.  Binding an expression against a
:class:`~repro.storage.schema.Schema` compiles it into a plain Python
closure ``row -> value`` so the hot loops (GMDJ evaluation, joins,
selections) pay no tree-walking cost per tuple.

Value expressions produce Python values (``None`` for NULL); predicate
expressions produce :class:`~repro.algebra.truth.Truth`.  Comparisons
involving NULL yield UNKNOWN, per SQL.

A small embedded DSL keeps query construction readable::

    from repro.algebra.expressions import col, lit
    theta = (col("F.StartTime") >= col("H.StartInterval")) & \
            (col("F.StartTime") < col("H.EndInterval")) & \
            (col("F.Protocol") == lit("HTTP"))

Note ``==``/``!=`` on expressions build comparison nodes, so expression
objects are **not** usable as dict keys; structural identity is exposed via
``same_as`` instead.
"""

from __future__ import annotations

import operator
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.algebra.truth import Truth
from repro.errors import ExpressionError
from repro.storage.schema import Schema

Evaluator = Callable[[tuple], Any]

#: Bound-evaluator memoization, keyed per (expression, schema) *object*
#: pair.  Chunked, partitioned, and pool evaluation re-bind the same
#: residual/key expressions against the same schema objects once per
#: fragment; the cache makes the repeat binds O(1) instead of re-walking
#: the tree.  Entries hold strong references to both objects, so a live
#: key can never alias a recycled ``id()``; the OrderedDict is LRU-capped
#: to keep long fuzzing sessions bounded.
_BIND_CACHE_LIMIT = 512
_bind_cache: OrderedDict[tuple[int, int], tuple["Expression", Schema,
                                                Evaluator]] = OrderedDict()
_bind_lock = threading.Lock()


def bind_cache_clear() -> None:
    """Drop all memoized bound evaluators (tests and benchmarks)."""
    with _bind_lock:
        _bind_cache.clear()


def _bind_cache_count(name: str) -> None:
    # Imported lazily: repro.obs pulls in the explain/engine surface,
    # which transitively imports this module.
    from repro.obs.metrics import get_registry

    get_registry().counter(name).inc()


def _bind_memoized(expression: "Expression", schema: Schema) -> Evaluator:
    key = (id(expression), id(schema))
    with _bind_lock:
        entry = _bind_cache.get(key)
        if entry is not None:
            _bind_cache.move_to_end(key)
    if entry is not None:
        _bind_cache_count("expr_bind_cache_hits")
        return entry[2]
    _bind_cache_count("expr_bind_cache_misses")
    evaluator = expression._bind(schema)
    with _bind_lock:
        _bind_cache[key] = (expression, schema, evaluator)
        while len(_bind_cache) > _BIND_CACHE_LIMIT:
            _bind_cache.popitem(last=False)
    return evaluator

#: Comparison operator names in the paper's φ set.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

_PY_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: φ → the complement comparison (used when eliminating ¬ in front of
#: subqueries: ¬(t φ S) ⇒ t φ̄ S).
COMPLEMENT = {"=": "<>", "<>": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

#: φ → the mirrored comparison (t φ s ≡ s φ̃ t), used when normalizing the
#: orientation of correlation predicates.
MIRROR = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _compare(op_name: str, left: Any, right: Any) -> Truth:
    """SQL comparison with NULL → UNKNOWN and loose numeric widening."""
    if left is None or right is None:
        return Truth.UNKNOWN
    if isinstance(left, str) != isinstance(right, str):
        raise ExpressionError(
            f"cannot compare {left!r} with {right!r} (string vs non-string)"
        )
    return Truth.of(_PY_COMPARE[op_name](left, right))


class Expression:
    """Base class for all expression nodes."""

    #: True for nodes producing Truth rather than a scalar value.
    is_predicate = False

    def bind(self, schema: Schema) -> Evaluator:
        """Compile into a closure evaluating rows of ``schema``.

        Memoized per (expression, schema) object pair — see
        :func:`_bind_memoized`; node classes implement :meth:`_bind`.
        """
        return _bind_memoized(self, schema)

    def _bind(self, schema: Schema) -> Evaluator:
        """Actually compile this node (implemented by subclasses)."""
        raise NotImplementedError

    def references(self) -> set[str]:
        """All attribute references appearing in this expression."""
        raise NotImplementedError

    def same_as(self, other: "Expression") -> bool:
        """Structural equality (``==`` is taken by the comparison DSL)."""
        return repr(self) == repr(other)

    # -- DSL -------------------------------------------------------------------

    def __eq__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("<>", self, _wrap(other))

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Comparison":
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(">=", self, _wrap(other))

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other: Any) -> "And":
        return And(self, _wrap_predicate(other))

    def __or__(self, other: Any) -> "Or":
        return Or(self, _wrap_predicate(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __add__(self, other: Any) -> "Arithmetic":
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "Arithmetic":
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "Arithmetic":
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other: Any) -> "Arithmetic":
        return Arithmetic("/", self, _wrap(other))

    def is_null(self) -> "IsNull":
        return IsNull(self)


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


def _wrap_predicate(value: Any) -> Expression:
    expr = _wrap(value)
    if not expr.is_predicate:
        raise ExpressionError(f"{expr!r} is not a predicate")
    return expr


@dataclass(frozen=True, eq=False, repr=False)
class Literal(Expression):
    """A constant value (``None`` for NULL)."""

    value: Any

    def _bind(self, schema: Schema) -> Evaluator:
        value = self.value
        return lambda row: value

    def references(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Column(Expression):
    """An attribute reference, bare (``x``) or qualified (``F.x``)."""

    reference: str

    def _bind(self, schema: Schema) -> Evaluator:
        position = schema.index_of(self.reference)
        return lambda row: row[position]

    def references(self) -> set[str]:
        return {self.reference}

    @property
    def qualifier(self) -> str | None:
        if "." in self.reference:
            return self.reference.partition(".")[0]
        return None

    @property
    def bare_name(self) -> str:
        return self.reference.rpartition(".")[2]

    def requalified(self, qualifier: str) -> "Column":
        return Column(f"{qualifier}.{self.bare_name}")

    def __repr__(self) -> str:
        return f"Col({self.reference})"


@dataclass(frozen=True, eq=False, repr=False)
class Arithmetic(Expression):
    """Binary arithmetic; any NULL operand yields NULL."""

    op: str
    left: Expression
    right: Expression

    _FUNCS = {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
        "/": operator.truediv,
    }

    def _bind(self, schema: Schema) -> Evaluator:
        func = self._FUNCS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def run(row: tuple) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if self.op == "/" and b == 0:
                return None  # SQL engines raise; NULL keeps OLAP ratios total
            return func(a, b)

        return run

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Comparison(Expression):
    """``left φ right`` under SQL 3-valued logic."""

    op: str
    left: Expression
    right: Expression
    is_predicate = True

    def __post_init__(self) -> None:
        if self.op not in _PY_COMPARE:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def _bind(self, schema: Schema) -> Evaluator:
        op_name = self.op
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: _compare(op_name, left(row), right(row))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def complemented(self) -> "Comparison":
        """¬(l φ r) as a comparison: l φ̄ r."""
        return Comparison(COMPLEMENT[self.op], self.left, self.right)

    def mirrored(self) -> "Comparison":
        """The same predicate with operands swapped: r φ̃ l."""
        return Comparison(MIRROR[self.op], self.right, self.left)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class And(Expression):
    left: Expression
    right: Expression
    is_predicate = True

    def _bind(self, schema: Schema) -> Evaluator:
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def run(row: tuple) -> Truth:
            a = left(row)
            if a is Truth.FALSE:
                return Truth.FALSE
            return a.and_(right(row))

        return run

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Or(Expression):
    left: Expression
    right: Expression
    is_predicate = True

    def _bind(self, schema: Schema) -> Evaluator:
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def run(row: tuple) -> Truth:
            a = left(row)
            if a is Truth.TRUE:
                return Truth.TRUE
            return a.or_(right(row))

        return run

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True, eq=False, repr=False)
class Not(Expression):
    operand: Expression
    is_predicate = True

    def _bind(self, schema: Schema) -> Evaluator:
        operand = self.operand.bind(schema)
        return lambda row: operand(row).not_()

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(frozen=True, eq=False, repr=False)
class IsNull(Expression):
    """``expr IS NULL`` — two-valued, never UNKNOWN."""

    operand: Expression
    negated: bool = False
    is_predicate = True

    def _bind(self, schema: Schema) -> Evaluator:
        operand = self.operand.bind(schema)
        if self.negated:
            return lambda row: Truth.of(operand(row) is not None)
        return lambda row: Truth.of(operand(row) is None)

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {suffix})"


@dataclass(frozen=True, eq=False, repr=False)
class Coalesce(Expression):
    """First non-NULL of two expressions (SQL COALESCE, binary form).

    Used by the join-unnesting baseline to repair the classic COUNT bug:
    an outer join leaves NULL where SQL semantics demand ``count = 0``.
    """

    first: Expression
    second: Expression

    def _bind(self, schema: Schema) -> Evaluator:
        first = self.first.bind(schema)
        second = self.second.bind(schema)

        def run(row: tuple) -> Any:
            value = first(row)
            return value if value is not None else second(row)

        return run

    def references(self) -> set[str]:
        return self.first.references() | self.second.references()

    def __repr__(self) -> str:
        return f"COALESCE({self.first!r}, {self.second!r})"


@dataclass(frozen=True, eq=False, repr=False)
class TruthLiteral(Expression):
    """A constant predicate (the ``true`` condition of the algorithm's seed)."""

    value: Truth
    is_predicate = True

    def _bind(self, schema: Schema) -> Evaluator:
        value = self.value
        return lambda row: value

    def references(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"TruthLit({self.value.name})"


TRUE = TruthLiteral(Truth.TRUE)
FALSE = TruthLiteral(Truth.FALSE)


def col(reference: str) -> Column:
    """Build an attribute reference expression."""
    return Column(reference)


def lit(value: Any) -> Literal:
    """Build a literal expression (``lit(None)`` is SQL NULL)."""
    return Literal(value)


def conjoin(predicates: Iterable[Expression]) -> Expression:
    """AND together a sequence of predicates (empty sequence → TRUE)."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else And(result, predicate)
    return result if result is not None else TRUE


def disjoin(predicates: Iterable[Expression]) -> Expression:
    """OR together a sequence of predicates (empty sequence → FALSE)."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else Or(result, predicate)
    return result if result is not None else FALSE


def conjuncts_of(predicate: Expression) -> list[Expression]:
    """Flatten a conjunction tree into its top-level conjuncts."""
    if isinstance(predicate, And):
        return conjuncts_of(predicate.left) + conjuncts_of(predicate.right)
    return [predicate]
