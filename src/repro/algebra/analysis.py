"""Condition analysis: factoring predicates for indexed evaluation.

Joins and GMDJs both accept arbitrary θ conditions over a pair of schemas.
To evaluate them efficiently we factor θ into

* *equality conjuncts* ``left_expr = right_expr`` where one side refers only
  to the left schema and the other only to the right schema — these become
  hash keys; and
* a *residual* predicate evaluated on the concatenated tuple.

The same factoring decides the paper's Figure 4 story: a ``<>`` correlation
predicate yields no equality conjunct, so the basic GMDJ degrades to
scanning the base array per detail tuple, until tuple completion rescues it.

This module deliberately stays *shallow*: :func:`refers_only_to` asks
whether references resolve, nothing more.  Full schema/type inference —
scope stacks for nested predicates, type checking, 3VL hazards, and
structural cost certification — lives in :mod:`repro.lint`, which the
planner, ``repro lint`` CLI, and fuzz oracle all drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    Comparison,
    Expression,
    TruthLiteral,
    conjoin,
    conjuncts_of,
)
from repro.algebra.truth import Truth
from repro.storage.schema import Schema


def refers_only_to(expression: Expression, schema: Schema) -> bool:
    """True when every attribute reference resolves in ``schema``."""
    return all(schema.has(ref) for ref in expression.references())


@dataclass
class FactoredCondition:
    """Result of :func:`factor_condition`.

    ``left_keys[i]`` must equal ``right_keys[i]`` (SQL equality, so NULL
    never matches); ``residual`` is evaluated over left ++ right.
    """

    left_keys: list[Expression]
    right_keys: list[Expression]
    residual: Expression | None

    @property
    def has_equality(self) -> bool:
        return bool(self.left_keys)


def factor_condition(
    condition: Expression, left: Schema, right: Schema
) -> FactoredCondition:
    """Split ``condition`` into hashable equality conjuncts and a residual."""
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in conjuncts_of(condition):
        if isinstance(conjunct, TruthLiteral) and conjunct.value is Truth.TRUE:
            continue
        placed = False
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            a, b = conjunct.left, conjunct.right
            if refers_only_to(a, left) and refers_only_to(b, right):
                left_keys.append(a)
                right_keys.append(b)
                placed = True
            elif refers_only_to(b, left) and refers_only_to(a, right):
                left_keys.append(b)
                right_keys.append(a)
                placed = True
        if not placed:
            residual.append(conjunct)
    residual_expr = conjoin(residual) if residual else None
    return FactoredCondition(left_keys, right_keys, residual_expr)


def is_trivially_true(condition: Expression) -> bool:
    return isinstance(condition, TruthLiteral) and condition.value is Truth.TRUE
