"""Generic plan-tree rewriting helpers.

Operators are plain dataclasses whose child links use different field names
(``child``, ``left``/``right``, ``base``/``detail``, ``gmdj``).  The helpers
here rebuild nodes with transformed children and compute structural
fingerprints, which the GMDJ optimizer uses to detect "same underlying
plan" (Proposition 4.1 requires the coalesced subqueries to range over the
same table).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expression,
    IsNull,
    Not,
    Or,
)
from repro.algebra.operators import Operator
from repro.storage.schema import Schema

_CHILD_FIELDS = ("child", "left", "right", "base", "detail", "gmdj",
                 "source", "input")


def map_children(node: Any, transform: Callable) -> Any:
    """Rebuild ``node`` with ``transform`` applied to operator-valued fields."""
    if not dataclasses.is_dataclass(node):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        if field.name not in _CHILD_FIELDS:
            continue
        value = getattr(node, field.name)
        if value is None or not _is_operator_like(value):
            continue
        replacement = transform(value)
        if replacement is not value:
            changes[field.name] = replacement
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def _is_operator_like(value: Any) -> bool:
    return isinstance(value, Operator) or hasattr(value, "evaluate")


def transform_bottom_up(node: Any, transform: Callable) -> Any:
    """Apply ``transform`` to every node, children first, until each node
    reaches a local fixpoint (the transform keeps being re-applied to its
    own output while it changes something)."""
    rebuilt = map_children(node, lambda child: transform_bottom_up(child, transform))
    while True:
        replacement = transform(rebuilt)
        if replacement is rebuilt:
            return rebuilt
        rebuilt = replacement


def plan_fingerprint(node: Any) -> str:
    """A structural identity string for an operator tree.

    Two plans with equal fingerprints compute identical relations (the
    converse does not hold).  ``repr`` of the dataclass tree is stable and
    sufficient for the coalescing check.
    """
    return repr(node)


def qualify_references(expression: Expression, schema: Schema) -> Expression:
    """Rewrite bare references resolvable in ``schema`` to full names.

    SQL scoping resolves a bare column name in the innermost block that
    declares it.  When a rewrite (GMDJ translation, join unnesting,
    segmented APPLY) lifts a subquery-local expression into a condition
    over a *combined* schema, its bare names could suddenly match outer
    attributes too; qualifying them against their home schema first
    preserves the original resolution.  Already-qualified and
    non-resolving references pass through untouched.
    """

    def walk(node: Expression) -> Expression:
        if isinstance(node, Column):
            if schema.has(node.reference):
                full = schema.field_of(node.reference).full_name
                if full != node.reference:
                    return Column(full)
            return node
        if isinstance(node, Comparison):
            return Comparison(node.op, walk(node.left), walk(node.right))
        if isinstance(node, And):
            return And(walk(node.left), walk(node.right))
        if isinstance(node, Or):
            return Or(walk(node.left), walk(node.right))
        if isinstance(node, Not):
            return Not(walk(node.operand))
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, walk(node.left), walk(node.right))
        if isinstance(node, IsNull):
            return IsNull(walk(node.operand), node.negated)
        return node

    return walk(expression)


def requalify_expression(
    expression: Expression, old_qualifier: str, new_qualifier: str
) -> Expression:
    """Rewrite ``old.x`` references to ``new.x`` throughout an expression."""
    if isinstance(expression, Column):
        if expression.qualifier == old_qualifier:
            return expression.requalified(new_qualifier)
        return expression
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            requalify_expression(expression.left, old_qualifier, new_qualifier),
            requalify_expression(expression.right, old_qualifier, new_qualifier),
        )
    if isinstance(expression, And):
        return And(
            requalify_expression(expression.left, old_qualifier, new_qualifier),
            requalify_expression(expression.right, old_qualifier, new_qualifier),
        )
    if isinstance(expression, Or):
        return Or(
            requalify_expression(expression.left, old_qualifier, new_qualifier),
            requalify_expression(expression.right, old_qualifier, new_qualifier),
        )
    if isinstance(expression, Not):
        return Not(
            requalify_expression(expression.operand, old_qualifier, new_qualifier)
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            requalify_expression(expression.left, old_qualifier, new_qualifier),
            requalify_expression(expression.right, old_qualifier, new_qualifier),
        )
    if isinstance(expression, IsNull):
        return IsNull(
            requalify_expression(expression.operand, old_qualifier, new_qualifier),
            expression.negated,
        )
    return expression
