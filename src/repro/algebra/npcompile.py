"""Whole-array expression evaluation for the numpy GMDJ backend.

The batch compiler (:mod:`repro.algebra.compile`) removes per-node
closure dispatch but still executes one generated Python frame *per
row*.  This module removes the per-row frame as well: an expression is
evaluated over an entire column set with one numpy operation per AST
node, amortizing interpreter overhead across the whole detail relation.

Value model
-----------
Scalars travel as :class:`NpValue` — ``(values, null, kind)``:

* ``values`` is an ndarray over the rows in scope, or a plain Python
  scalar (literals, base-row values in pair residuals); numpy
  broadcasting unifies the two.
* ``null`` is the SQL NULL mask: a bool ndarray, or the Python bool
  ``False``/``True`` kept *symbolic* so certified NEVER-null columns
  (``mask is None`` in columnar storage) never materialize or combine
  masks at all.
* ``kind`` is ``"num"`` (ints/floats/bools), ``"str"``
  (dictionary-encoded codes plus the decoded dictionary), or ``"null"``
  (the typeless NULL literal).

Predicates travel as :class:`NpTruth` ``(true, false)`` mask pairs —
UNKNOWN is ``~(true | false)`` — giving Kleene AND/OR/NOT as two
boolean array ops each.

Exactness
---------
The numpy backend must return *bit-identical* rows to the python
kernels, so every operation that could silently diverge from Python
semantics raises :class:`NpUnsupported` instead, and the caller falls
back to the python kernel for that operator:

* object-encoded columns (mixed types, >64-bit ints) have no array form;
* int64 arithmetic that could overflow (Python ints are unbounded), and
  int↔float comparisons/divisions beyond 2**53 (numpy promotes int64 to
  float64; Python compares exactly);
* string ordering across two dictionary columns is supported via a
  shared rank table; anything else stringly-mixed falls back (including
  the string-vs-number comparisons the interpreter rejects with
  :class:`~repro.errors.ExpressionError` — the fallback re-raises them
  with identical messages).
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
)
from repro.algebra.truth import Truth
from repro.storage.npcolumns import NpColumn, numpy as _np

#: Magnitudes beyond which int64 arithmetic may overflow (Python ints
#: are arbitrary precision) or float64 conversion loses integer
#: exactness.  Conservative bounds; violations are rare in OLAP data
#: and simply route the operator to the python kernel.
_INT_SAFE = 2 ** 62
_FLOAT_EXACT = 2 ** 53


class NpUnsupported(Exception):
    """This expression (or this data) has no exact whole-array form."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class NpValue:
    """A scalar expression over N rows: values + NULL mask + kind."""

    __slots__ = ("values", "null", "kind", "dictionary")

    def __init__(self, values: Any, null: Any, kind: str,
                 dictionary: list | None = None) -> None:
        self.values = values
        self.null = null
        self.kind = kind  # "num" | "str" | "null"
        self.dictionary = dictionary


class NpTruth:
    """A predicate over N rows as (TRUE mask, FALSE mask)."""

    __slots__ = ("true", "false")

    def __init__(self, true: Any, false: Any) -> None:
        self.true = true
        self.false = false


#: Symbolic boolean algebra over ``bool | ndarray`` — Python bools stay
#: symbolic so mask-free (NEVER-null) columns never touch an array mask.
def _and(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is True:
        return b
    if b is True:
        return a
    return a & b


def _or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is False:
        return b
    if b is False:
        return a
    return a | b


def _not(a: Any) -> Any:
    if a is True:
        return False
    if a is False:
        return True
    return ~a


def mask_of(flag: Any, n: int) -> Any:
    """Materialize a symbolic bool as an ndarray mask of length ``n``."""
    if flag is True:
        return _np.ones(n, dtype=bool)
    if flag is False:
        return _np.zeros(n, dtype=bool)
    return flag


_COLUMN_KINDS = {"int": "num", "float": "num", "bool": "num"}


def value_of_column(column: NpColumn) -> NpValue:
    """Wrap an ndarray column view as an :class:`NpValue`."""
    null = False if column.mask is None else ~column.mask
    if column.kind == "dict":
        return NpValue(column.values, null, "str",
                       dictionary=column.dictionary or [])
    return NpValue(column.values, null, _COLUMN_KINDS[column.kind])


def value_of_scalar(value: Any) -> NpValue:
    """Wrap a Python scalar (literal or base-row value)."""
    if value is None:
        return NpValue(None, True, "null")
    if isinstance(value, str):
        return NpValue(value, False, "str")
    if isinstance(value, bool) or type(value) is float:
        return NpValue(value, False, "num")
    if type(value) is int:
        if not -_INT_SAFE < value < _INT_SAFE:
            raise NpUnsupported("integer literal beyond int64 range")
        return NpValue(value, False, "num")
    raise NpUnsupported(f"unsupported scalar type {type(value).__name__}")


Resolver = Callable[[str], NpValue]


def _is_array(value: Any) -> bool:
    return isinstance(value, _np.ndarray)


def _is_floatish(value: NpValue) -> bool:
    if _is_array(value.values):
        return value.values.dtype.kind == "f"
    return type(value.values) is float


def _is_intish(value: NpValue) -> bool:
    if _is_array(value.values):
        return value.values.dtype.kind in "iub"
    return isinstance(value.values, (bool, int))


def _max_abs(value: NpValue) -> float:
    """Magnitude bound of a numeric operand (0 for empty arrays)."""
    v = value.values
    if _is_array(v):
        if not len(v):
            return 0.0
        if v.dtype.kind == "b":
            return 1.0
        return float(max(-int(v.min()), int(v.max()))) \
            if v.dtype.kind in "iu" else float(_np.abs(v).max())
    return float(abs(v))


def _guard_float_exact(left: NpValue, right: NpValue, what: str) -> None:
    """Mixed int/float numpy ops promote int64→float64; Python does not
    lose integer exactness.  Beyond 2**53 the results can differ, so the
    operator falls back."""
    if (_is_floatish(left) or _is_floatish(right)):
        for side in (left, right):
            if _is_intish(side) and not isinstance(side.values, bool) \
                    and _max_abs(side) >= _FLOAT_EXACT:
                raise NpUnsupported(
                    f"int/float {what} beyond exact float range")


_NP_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _string_compare(op: str, left: NpValue, right: NpValue) -> Any:
    """Raw comparison result for two string-kind operands.

    Dictionary codes compare through small per-dictionary tables: a
    code→bool lookup against a scalar, or a code→rank table shared by
    both dictionaries (string order is preserved by ranks in the merged
    sorted dictionary), so the row-wise work stays whole-array.
    """
    cmp = _NP_COMPARE[op]
    left_arr, right_arr = _is_array(left.values), _is_array(right.values)
    if not left_arr and not right_arr:
        return cmp(left.values, right.values)
    if left_arr and not right_arr:
        table = _np.fromiter(
            (cmp(word, right.values) for word in left.dictionary or []),
            dtype=bool, count=len(left.dictionary or []))
        return table[left.values] if len(table) else \
            _np.zeros(len(left.values), dtype=bool)
    if right_arr and not left_arr:
        table = _np.fromiter(
            (cmp(left.values, word) for word in right.dictionary or []),
            dtype=bool, count=len(right.dictionary or []))
        return table[right.values] if len(table) else \
            _np.zeros(len(right.values), dtype=bool)
    # dict column vs dict column: compare merged-dictionary ranks.
    merged = sorted(set(left.dictionary or []) | set(right.dictionary or []))
    rank = {word: position for position, word in enumerate(merged)}
    left_ranks = _np.fromiter((rank[w] for w in left.dictionary or []),
                              dtype=_np.int64,
                              count=len(left.dictionary or []))
    right_ranks = _np.fromiter((rank[w] for w in right.dictionary or []),
                               dtype=_np.int64,
                               count=len(right.dictionary or []))
    left_vals = left_ranks[left.values] if len(left_ranks) else \
        _np.zeros(len(left.values), dtype=_np.int64)
    right_vals = right_ranks[right.values] if len(right_ranks) else \
        _np.zeros(len(right.values), dtype=_np.int64)
    return cmp(left_vals, right_vals)


def _comparison(op: str, left: NpValue, right: NpValue) -> NpTruth:
    if left.kind == "null" or right.kind == "null":
        return NpTruth(False, False)  # everything UNKNOWN
    null = _or(left.null, right.null)
    if left.kind != right.kind:
        # The interpreter raises ExpressionError for non-null string vs
        # non-string pairs; the python fallback reproduces that exactly.
        raise NpUnsupported("string vs non-string comparison")
    if left.kind == "str":
        raw = _string_compare(op, left, right)
    else:
        _guard_float_exact(left, right, "comparison")
        raw = _NP_COMPARE[op](left.values, right.values)
        if raw is NotImplemented:  # pragma: no cover - defensive
            raise NpUnsupported("incomparable operands")
    not_null = _not(null)
    return NpTruth(_and(raw, not_null), _and(_not(raw), not_null))


def _arithmetic(op: str, left: NpValue, right: NpValue) -> NpValue:
    if left.kind == "null" or right.kind == "null":
        return NpValue(None, True, "null")
    if left.kind != "num" or right.kind != "num":
        raise NpUnsupported("non-numeric arithmetic")
    null = _or(left.null, right.null)
    a, b = left.values, right.values
    if op == "/":
        # True division; a zero divisor yields NULL (OLAP-total ratios).
        _guard_float_exact(left, right, "division")
        if _is_intish(left) and _is_intish(right):
            for side in (left, right):
                if _max_abs(side) >= _FLOAT_EXACT:
                    raise NpUnsupported(
                        "integer division beyond exact float range")
        zero = b == 0
        with _np.errstate(divide="ignore", invalid="ignore"):
            values = _np.true_divide(a, b)
        return NpValue(values, _or(null, zero if _np.any(zero) else False),
                       "num")
    both_int = _is_intish(left) and _is_intish(right)
    bound_left, bound_right = _max_abs(left), _max_abs(right)
    if both_int:
        # Python ints never overflow; int64 silently wraps.  Bound the
        # result magnitude or hand the operator to the python kernel.
        overflow = (bound_left * bound_right if op == "*"
                    else bound_left + bound_right) >= _INT_SAFE
        if overflow:
            raise NpUnsupported("int64 arithmetic may overflow")
        if isinstance(a, bool) or (_is_array(a) and a.dtype.kind == "b"):
            a = _np.asarray(a, dtype=_np.int64) if _is_array(a) else int(a)
        if isinstance(b, bool) or (_is_array(b) and b.dtype.kind == "b"):
            b = _np.asarray(b, dtype=_np.int64) if _is_array(b) else int(b)
    else:
        _guard_float_exact(left, right, "arithmetic")
    func = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]
    return NpValue(func(a, b), null, "num")


def _num_class(value: NpValue) -> str:
    if _is_array(value.values):
        return {"b": "bool", "i": "int", "u": "int",
                "f": "float"}[value.values.dtype.kind]
    if isinstance(value.values, bool):
        return "bool"
    return "int" if type(value.values) is int else "float"


def _coalesce(first: NpValue, second: NpValue) -> NpValue:
    if first.null is False:
        return first
    if first.kind == "null":
        return second
    if first.kind != "num" or second.kind not in ("num", "null"):
        raise NpUnsupported("non-numeric COALESCE")
    if second.kind == "null":
        return first
    if _num_class(first) != _num_class(second):
        # np.where would promote to one dtype; Python keeps the branch
        # values' own types per row (3 vs 3.0, True vs 1).
        raise NpUnsupported("COALESCE over mixed numeric types")
    take_second = mask_of(first.null, len(first.values)
                          if _is_array(first.values) else 1)
    values = _np.where(take_second, second.values, first.values)
    null = _and(first.null, second.null)
    return NpValue(values, null, "num")


def np_value(expression: Expression, resolve: Resolver) -> NpValue:
    """Evaluate a scalar expression to an :class:`NpValue`.

    Raises :class:`NpUnsupported` when no exact whole-array evaluation
    exists; the caller routes that operator to the python kernel.
    """
    if isinstance(expression, Literal):
        return value_of_scalar(expression.value)
    if isinstance(expression, Column):
        return resolve(expression.reference)
    if isinstance(expression, Arithmetic):
        return _arithmetic(expression.op,
                           np_value(expression.left, resolve),
                           np_value(expression.right, resolve))
    if isinstance(expression, Coalesce):
        return _coalesce(np_value(expression.first, resolve),
                         np_value(expression.second, resolve))
    raise NpUnsupported(
        f"no array form for {type(expression).__name__}")


def np_predicate(expression: Expression, resolve: Resolver) -> NpTruth:
    """Evaluate a predicate expression to an :class:`NpTruth`."""
    if isinstance(expression, Comparison):
        return _comparison(expression.op,
                           np_value(expression.left, resolve),
                           np_value(expression.right, resolve))
    if isinstance(expression, And):
        a = np_predicate(expression.left, resolve)
        b = np_predicate(expression.right, resolve)
        return NpTruth(_and(a.true, b.true), _or(a.false, b.false))
    if isinstance(expression, Or):
        a = np_predicate(expression.left, resolve)
        b = np_predicate(expression.right, resolve)
        return NpTruth(_or(a.true, b.true), _and(a.false, b.false))
    if isinstance(expression, Not):
        a = np_predicate(expression.operand, resolve)
        return NpTruth(a.false, a.true)
    if isinstance(expression, IsNull):
        operand = np_value(expression.operand, resolve)
        null = operand.null if operand.kind != "null" else True
        if expression.negated:
            return NpTruth(_not(null), null)
        return NpTruth(null, _not(null))
    if isinstance(expression, TruthLiteral):
        value = expression.value
        return NpTruth(value is Truth.TRUE, value is Truth.FALSE)
    raise NpUnsupported(
        f"no array form for predicate {type(expression).__name__}")


def np_truth_mask(expression: Expression, resolve: Resolver,
                  n: int) -> Any:
    """The rows (as a bool mask of length ``n``) where a predicate is
    TRUE — the only verdict selections and residuals keep."""
    return mask_of(np_predicate(expression, resolve).true, n)
