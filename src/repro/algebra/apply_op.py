"""The APPLY operator of Galindo-Legaria & Joshi (VLDB 2001).

Section 2.1 of the paper notes the translation rules "are not dependent
on the use of this nested algebra; … we could map to GMDJs from the
*APPLY* operator (used to represent looping subquery evaluation) of [14]
in the same way", and the conclusion suggests adding GMDJ-based
"alternate correlation removal rules for the APPLY operator" to a
cost-based optimizer.  This module implements exactly that:

* :class:`Apply` — the looping operator: for every input tuple, evaluate
  a parameterized subquery and combine per the mode:

  - ``semi`` / ``anti``  — keep the tuple iff the subquery is non-empty /
    empty (the EXISTS / NOT EXISTS shapes);
  - ``scalar``           — extend the tuple with the subquery's single
    value (NULL on empty; error on >1 row);
  - ``aggregate``        — extend the tuple with an aggregate of the
    subquery's item over its qualifying rows.

* :func:`apply_to_gmdj` — the GMDJ-based correlation removal: rewrite an
  Apply into a (fused selection over a) GMDJ using the same counting
  rules as Table 1, making the whole Section 3 machinery available to an
  APPLY-based optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.aggregates import AggregateSpec, count_star
from repro.algebra.expressions import Column, Comparison, Literal
from repro.algebra.nested import Subquery, env_with_row
from repro.algebra.operators import Operator, Project, Select
from repro.errors import CardinalityError, PlanError, TranslationError
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation
from repro.storage.schema import Field, Schema

APPLY_MODES = ("semi", "anti", "scalar", "aggregate")


@dataclass
class Apply(Operator):
    """``input APPLY subquery`` with looping (tuple-at-a-time) semantics.

    ``subquery`` is a :class:`~repro.algebra.nested.Subquery` whose
    predicate may reference the input's attributes (the correlation).
    ``output_name`` names the added column for scalar/aggregate modes.
    """

    input: Operator
    subquery: Subquery
    mode: str = "semi"
    output_name: str = "value"

    def __post_init__(self) -> None:
        if self.mode not in APPLY_MODES:
            raise PlanError(f"unknown APPLY mode {self.mode!r}")
        if self.mode == "scalar" and self.subquery.item is None:
            raise PlanError("scalar APPLY needs a subquery item")
        if self.mode == "aggregate" and self.subquery.aggregate is None:
            raise PlanError("aggregate APPLY needs a subquery aggregate")

    def children(self) -> tuple[Operator, ...]:
        return (self.input,)

    def _output_field(self, catalog: Catalog) -> Field:
        inner_schema = self.subquery.source_schema(catalog)
        if self.mode == "aggregate":
            spec = self.subquery.aggregate
            assert spec is not None
            base_field = spec.output_field(inner_schema)
            return Field(self.output_name, base_field.dtype)
        item = self.subquery.item
        assert item is not None
        from repro.algebra.operators import infer_dtype

        return Field(self.output_name, infer_dtype(item, inner_schema))

    def schema(self, catalog: Catalog) -> Schema:
        input_schema = self.input.schema(catalog)
        if self.mode in ("semi", "anti"):
            return input_schema
        return input_schema.extend([self._output_field(catalog)])

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.input.evaluate(catalog)
        stats = IOStats.ambient()
        stats.record_scan(len(source))
        rows = []
        for row in source.rows:
            env = env_with_row({}, source.schema, row)
            if self.mode in ("semi", "anti"):
                matched = False
                for _ in self.subquery.matching_rows(catalog, env):
                    matched = True
                    break
                if matched == (self.mode == "semi"):
                    rows.append(row)
                continue
            values = self.subquery.values(catalog, env)
            if self.mode == "aggregate":
                spec = self.subquery.aggregate
                assert spec is not None
                state = spec.make_accumulator()
                for value in values:
                    state.add(value)
                rows.append(row + (state.result(),))
            else:  # scalar
                if len(values) > 1:
                    raise CardinalityError(
                        f"scalar APPLY returned {len(values)} rows"
                    )
                rows.append(row + (values[0] if values else None,))
        stats.tuples_output += len(rows)
        return Relation(self.schema(catalog), rows, validate=False)


def evaluate_segmented(apply: Apply, catalog: Catalog) -> Relation:
    """SEGMENT-APPLY-style evaluation (Galindo-Legaria & Joshi, after
    the groupwise processing of Chatziantoniou & Ross).

    Instead of re-running the subquery per outer tuple, the detail table
    is *segmented* once on the equality-correlation key; each outer tuple
    then evaluates its subquery against its own segment.  The paper
    (Section 2.2) notes SEGMENT-APPLY is treated as a special-case
    operator in [14] while the GMDJ generalizes the idea; this
    implementation exists to make that comparison concrete — its work
    profile sits between the looping Apply and the GMDJ rewrite.

    Requires the subquery predicate to be a conjunction containing at
    least one equality correlation conjunct over a plain table scan;
    raises :class:`TranslationError` otherwise (callers fall back to the
    looping evaluation).
    """
    from repro.algebra.analysis import factor_condition
    from repro.algebra.nested import env_with_row, has_subqueries, substitute_free

    subquery = apply.subquery
    if has_subqueries(subquery.predicate):
        raise TranslationError("segmented APPLY needs a flat subquery predicate")
    source = subquery.source.evaluate(catalog)
    input_relation = apply.input.evaluate(catalog)
    input_schema = input_relation.schema
    from repro.algebra.rewrite import qualify_references

    predicate = qualify_references(subquery.predicate, source.schema)
    factored = factor_condition(predicate, input_schema, source.schema)
    if not factored.has_equality:
        raise TranslationError(
            "segmented APPLY needs an equality correlation conjunct"
        )
    stats = IOStats.ambient()
    # Build the segments: one pass over the detail table.
    right_keys = [k.bind(source.schema) for k in factored.right_keys]
    segments: dict[tuple, list] = {}
    for row in source.scan():
        key = tuple(ev(row) for ev in right_keys)
        if any(part is None for part in key):
            continue
        segments.setdefault(key, []).append(row)
    stats.index_builds += 1
    left_keys = [k.bind(input_schema) for k in factored.left_keys]
    residual = factored.residual
    combined = input_schema.concat(source.schema)
    residual_eval = residual.bind(combined) if residual is not None else None

    out_schema = apply.schema(catalog)
    rows = []
    stats.record_scan(len(input_relation))
    for outer_row in input_relation.rows:
        key = tuple(ev(outer_row) for ev in left_keys)
        stats.index_probes += 1
        segment = segments.get(key, ()) if not any(
            part is None for part in key
        ) else ()
        matching = []
        for inner_row in segment:
            if residual_eval is not None:
                stats.predicate_evals += 1
                if not residual_eval(outer_row + inner_row).is_true:
                    continue
            matching.append(inner_row)
        if apply.mode in ("semi", "anti"):
            if bool(matching) == (apply.mode == "semi"):
                rows.append(outer_row)
            continue
        env = env_with_row({}, input_schema, outer_row)
        item = subquery.item
        if item is None and subquery.aggregate is not None:
            item = subquery.aggregate.argument
        values = []
        for inner_row in matching:
            if item is None:
                values.append(None)
            else:
                closed = substitute_free(item, source.schema, env)
                values.append(closed.bind(source.schema)(inner_row))
        if apply.mode == "aggregate":
            spec = subquery.aggregate
            assert spec is not None
            state = spec.make_accumulator()
            for value in values:
                state.add(value)
            rows.append(outer_row + (state.result(),))
        else:
            if len(values) > 1:
                raise CardinalityError(
                    f"scalar APPLY returned {len(values)} rows"
                )
            rows.append(outer_row + (values[0] if values else None,))
    stats.tuples_output += len(rows)
    return Relation(out_schema, rows, validate=False)


def apply_to_gmdj(apply: Apply, catalog: Catalog,
                  count_name: str = "__apply_cnt") -> Operator:
    """Correlation removal for APPLY via the GMDJ (the paper's proposal).

    * ``semi``      →  ``π[input] σ[cnt > 0] MD(input, R, count(*), θ)``
    * ``anti``      →  ``π[input] σ[cnt = 0] MD(input, R, count(*), θ)``
    * ``aggregate`` →  ``MD(input, R, f(y) → name, θ)``
    * ``scalar``    →  not expressible by counting alone (the looping
      form raises on cardinality violations, which a GMDJ cannot); a
      :class:`TranslationError` directs the optimizer to the Table 1
      comparison rule instead, which carries the paper's "at most one
      row" proviso.

    The subquery predicate must be subquery-free (feed nested predicates
    through Algorithm SubqueryToGMDJ first) and neighboring.
    """
    from repro.algebra.nested import has_subqueries
    from repro.algebra.rewrite import qualify_references

    subquery = apply.subquery
    if has_subqueries(subquery.predicate):
        raise TranslationError(
            "apply_to_gmdj expects a flattened subquery predicate; run "
            "SubqueryToGMDJ on the inner blocks first"
        )
    input_schema = apply.input.schema(catalog)
    detail_schema = subquery.source.schema(catalog)
    predicate = qualify_references(subquery.predicate, detail_schema)
    if apply.mode == "aggregate":
        spec = subquery.aggregate
        assert spec is not None
        argument = (
            qualify_references(spec.argument, detail_schema)
            if spec.argument is not None else None
        )
        renamed = AggregateSpec(spec.function, argument, apply.output_name,
                                spec.distinct)
        return GMDJ(apply.input, subquery.source,
                    [ThetaBlock([renamed], predicate)])
    if apply.mode in ("semi", "anti"):
        gmdj = GMDJ(apply.input, subquery.source,
                    [ThetaBlock([count_star(count_name)], predicate)])
        op = ">" if apply.mode == "semi" else "="
        selected = Select(gmdj, Comparison(op, Column(count_name),
                                           Literal(0)))
        return Project(selected, list(input_schema.names))
    raise TranslationError(
        "scalar APPLY has no counting-only GMDJ form; use the Table 1 "
        "comparison rule (sigma[cnt = 1]) via SubqueryToGMDJ"
    )
