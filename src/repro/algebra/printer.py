"""Readable, indented rendering of operator trees (EXPLAIN output)."""

from __future__ import annotations

from repro.algebra.nested import NestedSelect
from repro.algebra.operators import (
    Difference,
    Distinct,
    GroupBy,
    Intersect,
    Join,
    Limit,
    Operator,
    OrderBy,
    Project,
    ProjectItem,
    Rename,
    ScanTable,
    Select,
    TableValue,
    Union,
)


def explain(plan: Operator, indent: int = 0) -> str:
    """Render an operator tree as an indented outline."""
    lines: list[str] = []
    _render(plan, indent, lines)
    return "\n".join(lines)


def _pad(indent: int) -> str:
    return "  " * indent


def _render(node: Operator, indent: int, lines: list[str]) -> None:
    from repro.gmdj.evaluate import SelectGMDJ
    from repro.gmdj.operator import GMDJ

    pad = _pad(indent)
    if isinstance(node, ScanTable):
        alias = f" -> {node.alias}" if node.alias else ""
        lines.append(f"{pad}Scan {node.table_name}{alias}")
    elif isinstance(node, TableValue):
        label = node.relation.name or "materialized"
        lines.append(f"{pad}Table [{label}] ({len(node.relation)} rows)")
    elif isinstance(node, Select):
        lines.append(f"{pad}Select [{node.predicate!r}]")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, NestedSelect):
        lines.append(f"{pad}NestedSelect [{node.predicate!r}]")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, Project):
        items = ", ".join(
            item if isinstance(item, str) else repr(ProjectItem.of(item).expression)
            for item in node.items
        )
        distinct = " DISTINCT" if node.distinct else ""
        lines.append(f"{pad}Project{distinct} [{items}]")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, Rename):
        lines.append(f"{pad}Rename -> {node.qualifier}")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, Distinct):
        lines.append(f"{pad}Distinct")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, Join):
        lines.append(
            f"{pad}Join {node.kind} ({node.method}) [{node.condition!r}]"
        )
        _render(node.left, indent + 1, lines)
        _render(node.right, indent + 1, lines)
    elif isinstance(node, (Union, Difference, Intersect)):
        kind = type(node).__name__
        mode = "DISTINCT" if node.distinct else "ALL"
        lines.append(f"{pad}{kind} {mode}")
        _render(node.left, indent + 1, lines)
        _render(node.right, indent + 1, lines)
    elif isinstance(node, OrderBy):
        keys = ", ".join(
            f"{ref} {'DESC' if desc else 'ASC'}" for ref, desc in node.keys
        )
        lines.append(f"{pad}OrderBy [{keys}]")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, Limit):
        suffix = f" OFFSET {node.offset}" if node.offset else ""
        lines.append(f"{pad}Limit {node.count}{suffix}")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, GroupBy):
        aggs = ", ".join(repr(spec) for spec in node.aggregates)
        lines.append(f"{pad}GroupBy keys={list(node.keys)} aggs=[{aggs}]")
        _render(node.child, indent + 1, lines)
    elif isinstance(node, GMDJ):
        lines.append(f"{pad}GMDJ ({len(node.blocks)} theta-blocks)")
        for i, block in enumerate(node.blocks, 1):
            aggs = ", ".join(repr(spec) for spec in block.aggregates)
            lines.append(f"{_pad(indent + 1)}l{i}: [{aggs}]")
            lines.append(f"{_pad(indent + 1)}theta{i}: {block.condition!r}")
        lines.append(f"{_pad(indent + 1)}base:")
        _render(node.base, indent + 2, lines)
        lines.append(f"{_pad(indent + 1)}detail:")
        _render(node.detail, indent + 2, lines)
    elif isinstance(node, SelectGMDJ):
        lines.append(
            f"{pad}SelectGMDJ [{node.selection!r}] completion={node.rule!r}"
        )
        _render(node.gmdj, indent + 1, lines)
    else:
        from repro.algebra.apply_op import Apply

        if isinstance(node, Apply):
            lines.append(
                f"{pad}Apply {node.mode} -> {node.output_name} "
                f"[{node.subquery!r}]"
            )
            _render(node.input, indent + 1, lines)
        else:
            lines.append(f"{pad}{node!r}")
