"""Predicate simplification: constant folding and identity elimination.

The translator and the coalescing rewrites produce conditions with
redundant structure — ``TRUE AND θ`` from empty-predicate subqueries,
literal-only comparisons from environment substitution, double wrapping
from De Morgan passes.  The simplifier normalizes these before the GMDJ
evaluator compiles them, which both tidies EXPLAIN output and removes
per-tuple work.

All rules are exact under three-valued logic:

* literal φ literal      → TRUE/FALSE/UNKNOWN literal
* TRUE AND p / p AND TRUE → p;   FALSE AND p → FALSE
* FALSE OR p / p OR FALSE → p;   TRUE OR p → TRUE
* NOT literal            → folded;   NOT comparison → complemented
* arithmetic over literals → folded literal
* x IS NULL over a literal → folded

(UNKNOWN literals are *not* collapsed in AND/OR — ``UNKNOWN AND p`` is
FALSE when p is FALSE, so it must survive as an operand.)
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
)
from repro.algebra.truth import Truth
from repro.storage.schema import Schema

_EMPTY = Schema(())


def _is_truth(expression: Expression, value: Truth) -> bool:
    return (isinstance(expression, TruthLiteral)
            and expression.value is value)


def simplify(expression: Expression) -> Expression:
    """Return an equivalent, usually smaller, expression."""
    if isinstance(expression, Comparison):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            try:
                verdict = Comparison(expression.op, left, right).bind(_EMPTY)(())
            except Exception:
                return Comparison(expression.op, left, right)
            return TruthLiteral(verdict)
        return Comparison(expression.op, left, right)
    if isinstance(expression, And):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if _is_truth(left, Truth.FALSE) or _is_truth(right, Truth.FALSE):
            return TruthLiteral(Truth.FALSE)
        if _is_truth(left, Truth.TRUE):
            return right
        if _is_truth(right, Truth.TRUE):
            return left
        return And(left, right)
    if isinstance(expression, Or):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if _is_truth(left, Truth.TRUE) or _is_truth(right, Truth.TRUE):
            return TruthLiteral(Truth.TRUE)
        if _is_truth(left, Truth.FALSE):
            return right
        if _is_truth(right, Truth.FALSE):
            return left
        return Or(left, right)
    if isinstance(expression, Not):
        operand = simplify(expression.operand)
        if isinstance(operand, TruthLiteral):
            return TruthLiteral(operand.value.not_())
        if isinstance(operand, Comparison):
            return operand.complemented()
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)
    if isinstance(expression, Arithmetic):
        left = simplify(expression.left)
        right = simplify(expression.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            value = Arithmetic(expression.op, left, right).bind(_EMPTY)(())
            return Literal(value)
        return Arithmetic(expression.op, left, right)
    if isinstance(expression, IsNull):
        operand = simplify(expression.operand)
        if isinstance(operand, Literal):
            is_null = operand.value is None
            return TruthLiteral(
                Truth.of(is_null != expression.negated)
            )
        return IsNull(operand, expression.negated)
    if isinstance(expression, Coalesce):
        first = simplify(expression.first)
        second = simplify(expression.second)
        if isinstance(first, Literal):
            if first.value is not None:
                return first
            return second
        return Coalesce(first, second)
    return expression


def simplify_plan(plan: Any) -> Any:
    """Simplify every condition in an operator tree, in place of nodes.

    Covers the condition-bearing nodes the translator emits: Select,
    Join, GMDJ blocks, and fused SelectGMDJ selections.
    """
    import dataclasses

    from repro.algebra.operators import Join, Select
    from repro.algebra.rewrite import transform_bottom_up
    from repro.gmdj.evaluate import SelectGMDJ
    from repro.gmdj.operator import GMDJ, ThetaBlock

    def step(node: Any) -> Any:
        if isinstance(node, Select):
            simplified = simplify(node.predicate)
            if not simplified.same_as(node.predicate):
                return Select(node.child, simplified)
            return node
        if isinstance(node, Join):
            simplified = simplify(node.condition)
            if not simplified.same_as(node.condition):
                return dataclasses.replace(node, condition=simplified)
            return node
        if isinstance(node, GMDJ):
            blocks = [
                ThetaBlock(block.aggregates, simplify(block.condition))
                for block in node.blocks
            ]
            if all(new.condition.same_as(old.condition)
                   for new, old in zip(blocks, node.blocks)):
                return node
            return GMDJ(node.base, node.detail, blocks)
        if isinstance(node, SelectGMDJ):
            simplified = simplify(node.selection)
            if not simplified.same_as(node.selection):
                return SelectGMDJ(node.gmdj, simplified, node.rule)
            return node
        return node

    return transform_bottom_up(plan, step)
