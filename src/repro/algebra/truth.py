"""SQL three-valued logic.

Every predicate in the library evaluates to a :class:`Truth` value.  The
paper's correctness argument (Theorem 3.1) leans on *where-clause
truncation*: a tuple whose predicate evaluates to FALSE **or** UNKNOWN is
discarded, so it suffices for the GMDJ rewrite to select a tuple exactly
when the subquery predicate returns TRUE.  Getting UNKNOWN right is what
makes the ``ALL``-via-``MAX`` shortcut in the paper's footnote 2 wrong and
the counting rewrite correct.
"""

from __future__ import annotations

import enum


class Truth(enum.Enum):
    """Kleene three-valued logic value."""

    TRUE = 1
    FALSE = 0
    UNKNOWN = -1

    @staticmethod
    def of(flag: bool) -> "Truth":
        return Truth.TRUE if flag else Truth.FALSE

    @property
    def is_true(self) -> bool:
        """True only for TRUE — implements where-clause truncation."""
        return self is Truth.TRUE

    def and_(self, other: "Truth") -> "Truth":
        if self is Truth.FALSE or other is Truth.FALSE:
            return Truth.FALSE
        if self is Truth.UNKNOWN or other is Truth.UNKNOWN:
            return Truth.UNKNOWN
        return Truth.TRUE

    def or_(self, other: "Truth") -> "Truth":
        if self is Truth.TRUE or other is Truth.TRUE:
            return Truth.TRUE
        if self is Truth.UNKNOWN or other is Truth.UNKNOWN:
            return Truth.UNKNOWN
        return Truth.FALSE

    def not_(self) -> "Truth":
        if self is Truth.UNKNOWN:
            return Truth.UNKNOWN
        return Truth.FALSE if self is Truth.TRUE else Truth.TRUE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Truth.{self.name}"
