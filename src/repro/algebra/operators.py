"""Flat (non-nested) relational algebra operators.

Every operator is a node with ``schema(catalog)`` and ``evaluate(catalog)``
methods; evaluation materializes the result as a
:class:`~repro.storage.relation.Relation`.  Work is reported into the
ambient :class:`~repro.storage.iostats.IOStats`: reading any operator input
counts as a scan, predicate applications count as ``predicate_evals``, and
join implementations count the pairs they consider.

Bag semantics throughout: ``Union``/``Difference`` come in ALL (bag) and
DISTINCT (set) flavours; ``Project`` optionally deduplicates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.analysis import (
    FactoredCondition,
    factor_condition,
    is_trivially_true,
)
from repro.algebra.expressions import (
    Arithmetic,
    Column,
    Comparison,
    Expression,
    Literal,
)
from repro.errors import ExpressionError, PlanError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation, Row
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


def infer_dtype(expression: Expression, schema: Schema) -> DataType:
    """Best-effort static type of a scalar expression."""
    if isinstance(expression, Column):
        return schema.field_of(expression.reference).dtype
    if isinstance(expression, Literal):
        if expression.value is None:
            return DataType.STRING  # arbitrary; NULL literal carries no type
        return DataType.infer(expression.value)
    if isinstance(expression, Arithmetic):
        if expression.op == "/":
            return DataType.FLOAT
        left = infer_dtype(expression.left, schema)
        right = infer_dtype(expression.right, schema)
        if left is DataType.INTEGER and right is DataType.INTEGER:
            return DataType.INTEGER
        return DataType.FLOAT
    if expression.is_predicate:
        return DataType.BOOLEAN
    return DataType.FLOAT


class Operator:
    """Base class for algebra nodes."""

    def schema(self, catalog: Catalog) -> Schema:
        raise NotImplementedError

    def evaluate(self, catalog: Catalog) -> Relation:
        raise NotImplementedError

    def children(self) -> tuple["Operator", ...]:
        return ()


@dataclass
class ScanTable(Operator):
    """Read a named catalog table, optionally re-qualifying it (``Flow -> F``)."""

    table_name: str
    alias: str | None = None

    def schema(self, catalog: Catalog) -> Schema:
        schema = catalog.table(self.table_name).schema
        qualifier = self.alias or self.table_name
        return schema.rename(qualifier)

    def evaluate(self, catalog: Catalog) -> Relation:
        relation = catalog.table(self.table_name)
        qualifier = self.alias or self.table_name
        out = Relation(relation.schema.rename(qualifier), relation.rows,
                       name=self.table_name, validate=False)
        # Scan views share the stored relation's columnar-encoding cache:
        # the typed columns are qualifier-independent, so every query
        # over this table reuses one encoding until the table mutates.
        out._columnar = relation._columnar
        return out


@dataclass
class TableValue(Operator):
    """Wrap an already-materialized relation (intermediate results)."""

    relation: Relation
    alias: str | None = None

    def schema(self, catalog: Catalog) -> Schema:
        if self.alias is not None:
            return self.relation.schema.rename(self.alias)
        return self.relation.schema

    def evaluate(self, catalog: Catalog) -> Relation:
        if self.alias is not None:
            return self.relation.rename(self.alias)
        return self.relation


@dataclass
class Select(Operator):
    """σ[predicate] with where-clause truncation (keep only TRUE)."""

    child: Operator
    predicate: Expression

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        stats = IOStats.ambient()
        if is_trivially_true(self.predicate):
            return source
        test = self.predicate.bind(source.schema)
        rows = []
        for row in source.scan():
            stats.predicate_evals += 1
            if test(row).is_true:
                rows.append(row)
        stats.tuples_output += len(rows)
        return Relation(source.schema, rows, validate=False)


@dataclass
class ProjectItem:
    """One output column of a projection.

    Items built from a bare attribute reference keep the source field's
    qualifier (``preserve=True``); renamed or computed items produce an
    unqualified output attribute.
    """

    expression: Expression
    name: str
    preserve: bool = False

    @staticmethod
    def of(item: "ProjectItem | str | tuple | Expression") -> "ProjectItem":
        if isinstance(item, ProjectItem):
            return item
        if isinstance(item, str):
            return ProjectItem(Column(item), item.rpartition(".")[2], preserve=True)
        if isinstance(item, tuple) and len(item) == 2:
            expression, name = item
            return ProjectItem(expression, name)
        raise ExpressionError(f"bad projection item {item!r}")

    def output_field(self, child_schema: Schema) -> Field:
        if self.preserve and isinstance(self.expression, Column):
            return child_schema.field_of(self.expression.reference)
        return Field(self.name, infer_dtype(self.expression, child_schema))


@dataclass
class Project(Operator):
    """π[items]; ``distinct=True`` gives the set-valued π of the paper."""

    child: Operator
    items: Sequence
    distinct: bool = False

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def _resolved_items(self) -> list[ProjectItem]:
        return [ProjectItem.of(item) for item in self.items]

    def schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.schema(catalog)
        return Schema(item.output_field(child_schema) for item in self._resolved_items())

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        items = self._resolved_items()
        evaluators = [item.expression.bind(source.schema) for item in items]
        schema = Schema(item.output_field(source.schema) for item in items)
        rows = [tuple(ev(row) for ev in evaluators) for row in source.scan()]
        if self.distinct:
            seen: set[Row] = set()
            unique: list[Row] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        IOStats.ambient().tuples_output += len(rows)
        return Relation(schema, rows, validate=False)


@dataclass
class Rename(Operator):
    """ρ: replace every field's qualifier (``E -> C`` in the paper)."""

    child: Operator
    qualifier: str

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog).rename(self.qualifier)

    def evaluate(self, catalog: Catalog) -> Relation:
        return self.child.evaluate(catalog).rename(self.qualifier)


@dataclass
class Distinct(Operator):
    child: Operator

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        IOStats.ambient().record_scan(len(source))
        return source.distinct()


def _check_union_compatible(left: Schema, right: Schema) -> None:
    if len(left) != len(right):
        raise SchemaError(
            f"union arity mismatch: {len(left)} vs {len(right)} columns"
        )


@dataclass
class Union(Operator):
    """UNION ALL by default; ``distinct=True`` gives set union."""

    left: Operator
    right: Operator
    distinct: bool = False

    def children(self) -> tuple["Operator", ...]:
        return (self.left, self.right)

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        _check_union_compatible(left, self.right.schema(catalog))
        return left

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        _check_union_compatible(left.schema, right.schema)
        IOStats.ambient().record_scan(len(left))
        IOStats.ambient().record_scan(len(right))
        result = Relation(left.schema, left.rows + right.rows, validate=False)
        if self.distinct:
            result = result.distinct()
        return result


@dataclass
class Difference(Operator):
    """EXCEPT ALL by default (bag difference); ``distinct=True`` = set minus."""

    left: Operator
    right: Operator
    distinct: bool = False

    def children(self) -> tuple["Operator", ...]:
        return (self.left, self.right)

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        _check_union_compatible(left, self.right.schema(catalog))
        return left

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        _check_union_compatible(left.schema, right.schema)
        IOStats.ambient().record_scan(len(left))
        IOStats.ambient().record_scan(len(right))
        if self.distinct:
            # SQL EXCEPT: distinct left rows with no occurrence in right.
            exclude = set(right.rows)
            rows = [row for row in left.distinct().rows
                    if row not in exclude]
            return Relation(left.schema, rows, validate=False)
        remaining = Counter(right.rows)
        rows = []
        for row in left.rows:
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
            else:
                rows.append(row)
        return Relation(left.schema, rows, validate=False)


@dataclass
class Intersect(Operator):
    """INTERSECT ALL by default (bag intersection: minimum multiplicity);
    ``distinct=True`` gives set intersection."""

    left: Operator
    right: Operator
    distinct: bool = False

    def children(self) -> tuple["Operator", ...]:
        return (self.left, self.right)

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        _check_union_compatible(left, self.right.schema(catalog))
        return left

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        _check_union_compatible(left.schema, right.schema)
        IOStats.ambient().record_scan(len(left))
        IOStats.ambient().record_scan(len(right))
        remaining = Counter(right.rows)
        rows = []
        for row in left.rows:
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
                rows.append(row)
        result = Relation(left.schema, rows, validate=False)
        if self.distinct:
            result = result.distinct()
        return result


@dataclass
class Limit(Operator):
    """Keep the first ``count`` rows (after an optional ``offset``)."""

    child: Operator
    count: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.count < 0 or self.offset < 0:
            raise PlanError("LIMIT/OFFSET must be non-negative")

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        rows = source.rows[self.offset:self.offset + self.count]
        IOStats.ambient().tuples_output += len(rows)
        return Relation(source.schema, rows, validate=False)


#: Join kinds supported by :class:`Join`.
JOIN_KINDS = ("inner", "left", "semi", "anti")
JOIN_METHODS = ("auto", "nested", "hash", "merge")


@dataclass
class Join(Operator):
    """θ-join of two operators.

    ``kind``:

    * ``inner`` — matching concatenated pairs;
    * ``left``  — inner plus left rows without a match padded with NULLs
      (the outer join the unnesting baselines need for empty groups);
    * ``semi``  — left rows with at least one match (no right columns);
    * ``anti``  — left rows with no match.

    ``method='auto'`` picks a hash join when θ has an equality conjunct
    across the inputs and a nested-loop join otherwise.
    """

    left: Operator
    right: Operator
    condition: Expression
    kind: str = "inner"
    method: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")
        if self.method not in JOIN_METHODS:
            raise PlanError(f"unknown join method {self.method!r}")

    def children(self) -> tuple["Operator", ...]:
        return (self.left, self.right)

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        if self.kind in ("semi", "anti"):
            return left
        return left.concat(self.right.schema(catalog))

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        factored = factor_condition(self.condition, left.schema, right.schema)
        method = self.method
        if method == "auto":
            method = "hash" if factored.has_equality else "nested"
        if method in ("hash", "merge") and not factored.has_equality:
            raise PlanError(
                f"{method} join requires an equality conjunct; condition is "
                f"{self.condition!r}"
            )
        if method == "nested":
            matches = _nested_matches(left, right, self.condition)
        elif method == "hash":
            matches = _hash_matches(left, right, factored)
        else:
            matches = _merge_matches(left, right, factored)
        return _emit_join(left, right, matches, self.kind)


def _nested_matches(
    left: Relation, right: Relation, condition: Expression
) -> Iterator[tuple[int, Row]]:
    """Yield (left_index, right_row) matching pairs via nested loops."""
    stats = IOStats.ambient()
    combined = left.schema.concat(right.schema)
    test = condition.bind(combined)
    stats.record_scan(len(left))
    for left_index, left_row in enumerate(left.rows):
        stats.record_scan(len(right.rows))
        for right_row in right.rows:
            stats.join_pairs_considered += 1
            stats.predicate_evals += 1
            if test(left_row + right_row).is_true:
                yield left_index, right_row


def _hash_matches(
    left: Relation, right: Relation, factored: FactoredCondition
) -> Iterator[tuple[int, Row]]:
    """Yield matching pairs via a hash table built on the right input."""
    stats = IOStats.ambient()
    right_key_evals = [k.bind(right.schema) for k in factored.right_keys]
    left_key_evals = [k.bind(left.schema) for k in factored.left_keys]
    table: dict[tuple, list[Row]] = {}
    for right_row in right.scan():
        key = tuple(ev(right_row) for ev in right_key_evals)
        if any(part is None for part in key):
            continue
        table.setdefault(key, []).append(right_row)
    stats.index_builds += 1
    residual = factored.residual
    combined = left.schema.concat(right.schema)
    test = residual.bind(combined) if residual is not None else None
    for left_index, left_row in enumerate(left.rows):
        stats.tuples_scanned += 1
        key = tuple(ev(left_row) for ev in left_key_evals)
        if any(part is None for part in key):
            continue
        stats.index_probes += 1
        for right_row in table.get(key, ()):
            stats.join_pairs_considered += 1
            if test is None:
                yield left_index, right_row
            else:
                stats.predicate_evals += 1
                if test(left_row + right_row).is_true:
                    yield left_index, right_row


def _merge_matches(
    left: Relation, right: Relation, factored: FactoredCondition
) -> Iterator[tuple[int, Row]]:
    """Yield matching pairs via sort-merge on the first equality key."""
    stats = IOStats.ambient()
    left_key = factored.left_keys[0].bind(left.schema)
    right_key = factored.right_keys[0].bind(right.schema)
    left_sorted = sorted(
        ((left_key(row), i) for i, row in enumerate(left.rows)
         if left_key(row) is not None),
        key=lambda pair: pair[0],
    )
    right_sorted = sorted(
        ((right_key(row), i) for i, row in enumerate(right.rows)
         if right_key(row) is not None),
        key=lambda pair: pair[0],
    )
    stats.record_scan(len(left))
    stats.record_scan(len(right))
    # Full residual includes the remaining equality keys, if any.
    extra = []
    for lk, rk in zip(factored.left_keys[1:], factored.right_keys[1:]):
        extra.append(Comparison("=", lk, rk))
    residual = factored.residual
    for clause in extra:
        residual = clause if residual is None else (residual & clause)
    combined = left.schema.concat(right.schema)
    test = residual.bind(combined) if residual is not None else None
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        lkey, _ = left_sorted[i]
        rkey, _ = right_sorted[j]
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Collect the equal-key runs on both sides.
            i_end = i
            while i_end < len(left_sorted) and left_sorted[i_end][0] == lkey:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and right_sorted[j_end][0] == rkey:
                j_end += 1
            for _, li in left_sorted[i:i_end]:
                left_row = left.rows[li]
                for _, ri in right_sorted[j:j_end]:
                    right_row = right.rows[ri]
                    stats.join_pairs_considered += 1
                    if test is None:
                        yield li, right_row
                    else:
                        stats.predicate_evals += 1
                        if test(left_row + right_row).is_true:
                            yield li, right_row
            i, j = i_end, j_end


def _emit_join(
    left: Relation,
    right: Relation,
    matches: Iterable[tuple[int, Row]],
    kind: str,
) -> Relation:
    stats = IOStats.ambient()
    if kind == "inner":
        schema = left.schema.concat(right.schema)
        rows = [left.rows[li] + right_row for li, right_row in matches]
        stats.tuples_output += len(rows)
        return Relation(schema, rows, validate=False)
    if kind == "left":
        schema = left.schema.concat(right.schema)
        rows: list[Row] = []
        matched: set[int] = set()
        for li, right_row in matches:
            matched.add(li)
            rows.append(left.rows[li] + right_row)
        padding = (None,) * len(right.schema)
        for li, left_row in enumerate(left.rows):
            if li not in matched:
                rows.append(left_row + padding)
        stats.tuples_output += len(rows)
        return Relation(schema, rows, validate=False)
    # semi / anti keep only left rows.
    matched_set = {li for li, _ in matches}
    if kind == "semi":
        rows = [row for li, row in enumerate(left.rows) if li in matched_set]
    else:
        rows = [row for li, row in enumerate(left.rows) if li not in matched_set]
    stats.tuples_output += len(rows)
    return Relation(left.schema, rows, validate=False)


@dataclass
class GroupBy(Operator):
    """Grouping and aggregation.

    With an empty key list this is a scalar aggregate: exactly one output
    row even for empty input (``count(*)`` = 0, ``sum`` = NULL), matching
    SQL — the distinction the paper's footnote 2 turns on.
    """

    child: Operator
    keys: Sequence[str]
    aggregates: Sequence[AggregateSpec]

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.schema(catalog)
        fields = [child_schema.field_of(key) for key in self.keys]
        fields.extend(spec.output_field(child_schema) for spec in self.aggregates)
        return Schema(fields)

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        stats = IOStats.ambient()
        key_positions = [source.schema.index_of(key) for key in self.keys]
        argument_evals = [spec.bind_argument(source.schema) for spec in self.aggregates]
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in source.scan():
            key = tuple(row[p] for p in key_positions)
            state = groups.get(key)
            if state is None:
                state = [spec.make_accumulator() for spec in self.aggregates]
                groups[key] = state
                order.append(key)
            for accumulator, evaluator in zip(state, argument_evals):
                stats.aggregate_updates += 1
                accumulator.add(None if evaluator is None else evaluator(row))
        if not self.keys and not groups:
            groups[()] = [spec.make_accumulator() for spec in self.aggregates]
            order.append(())
        fields = [source.schema.field_of(key) for key in self.keys]
        fields.extend(spec.output_field(source.schema) for spec in self.aggregates)
        rows = [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]
        stats.tuples_output += len(rows)
        return Relation(Schema(fields), rows, validate=False)


@dataclass
class OrderBy(Operator):
    """Sort rows by attribute references; NULLs sort first.

    ``keys`` is a sequence of ``(reference, descending)`` pairs.  Sorting is
    stable, so secondary orderings compose the SQL way.
    """

    child: Operator
    keys: Sequence[tuple[str, bool]]

    def children(self) -> tuple["Operator", ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        source = self.child.evaluate(catalog)
        IOStats.ambient().record_scan(len(source))
        rows = list(source.rows)
        for reference, descending in reversed(list(self.keys)):
            position = source.schema.index_of(reference)
            rows.sort(
                key=lambda row: (row[position] is not None, row[position]),
                reverse=descending,
            )
        return Relation(source.schema, rows, validate=False)


def scan(table_name: str, alias: str | None = None) -> ScanTable:
    """Convenience constructor mirroring the paper's ``Flow -> F``."""
    return ScanTable(table_name, alias)


def select(child: Operator, predicate: Expression) -> Select:
    return Select(child, predicate)


def project(child: Operator, items: Sequence, distinct: bool = False) -> Project:
    return Project(child, items, distinct)
