"""Aggregate functions with SQL NULL semantics.

An :class:`AggregateSpec` names an aggregate over an input expression (or
``*``) and an output attribute; it manufactures one :class:`Accumulator`
per group/base tuple.  Accumulators are updated incrementally, which is
what lets a GMDJ compute every aggregate list in a single scan of the
detail relation.

SQL rules implemented here and exercised by the paper:

* ``COUNT(*)`` counts tuples; ``COUNT(x)`` counts non-NULL values; both
  return 0 on empty input.  Counting is the paper's central mechanism.
* ``SUM``/``AVG``/``MIN``/``MAX`` ignore NULLs and return NULL on empty (or
  all-NULL) input — this is the footnote-2 pitfall: ``x > MAX(empty)`` is
  UNKNOWN, while ``x >ALL empty`` is TRUE, so ALL cannot be reduced to MAX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExpressionError
from repro.algebra.expressions import Evaluator, Expression
from repro.storage.iostats import IOStats
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType

#: Names accepted by :func:`make_accumulator`.
AGGREGATE_NAMES = ("count", "sum", "avg", "min", "max")


class Accumulator:
    """Incremental state of one aggregate over one group.

    Accumulators are *mergeable*: combining the states of two disjoint
    partitions gives the state of their union.  This is what makes the
    GMDJ evaluable over a partitioned detail relation (the distributed
    evaluation the paper's conclusion points at) — each partition is
    scanned independently and the per-base-tuple states are merged.
    """

    __slots__ = ()

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        """Fold another partition's state of the same aggregate into this."""
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountStar(Accumulator):
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def merge(self, other: "CountStar") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class CountValue(Accumulator):
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def merge(self, other: "CountValue") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class Sum(Accumulator):
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total = 0
        self.seen = False

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.seen = True

    def merge(self, other: "Sum") -> None:
        if other.seen:
            self.total += other.total
            self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class Avg(Accumulator):
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.count += 1

    def merge(self, other: "Avg") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class Min(Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def merge(self, other: "Min") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class Max(Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def merge(self, other: "Max") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class DistinctWrapper(Accumulator):
    """DISTINCT modifier: feed each distinct non-NULL value once.

    Wraps any inner accumulator; the value set is kept until
    finalization, so two wrappers merge by set union (unlike finalized
    counts, which is why partitioned evaluation special-cases DISTINCT).
    """

    __slots__ = ("inner", "seen")

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def merge(self, other: "DistinctWrapper") -> None:
        for value in other.seen:
            if value not in self.seen:
                self.seen.add(value)
                self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_FACTORIES: dict[str, Callable[[], Accumulator]] = {
    "sum": Sum,
    "avg": Avg,
    "min": Min,
    "max": Max,
}


@dataclass(frozen=True)
class AggregateSpec:
    """``function([DISTINCT] input) -> output_name``.

    ``argument`` is ``None`` for ``count(*)``; otherwise any scalar
    :class:`Expression` over the detail (or group) schema.  ``distinct``
    applies the SQL DISTINCT modifier (requires an argument).
    """

    function: str
    argument: Expression | None
    output_name: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_NAMES:
            raise ExpressionError(f"unknown aggregate {self.function!r}")
        if self.argument is None and self.function != "count":
            raise ExpressionError(f"{self.function}(*) is not defined")
        if self.distinct and self.argument is None:
            raise ExpressionError("COUNT(DISTINCT *) is not defined")

    @property
    def is_count_star(self) -> bool:
        return (self.function == "count" and self.argument is None
                and not self.distinct)

    def output_field(self, input_schema: Schema) -> Field:
        """The output attribute this aggregate contributes."""
        dtype = self._output_dtype(input_schema)
        return Field(self.output_name, dtype, qualifier=None)

    def _output_dtype(self, input_schema: Schema) -> DataType:
        if self.function == "count":
            return DataType.INTEGER
        if self.function == "avg":
            return DataType.FLOAT
        # sum/min/max follow the argument's type when it is a plain column.
        refs = self.argument.references() if self.argument else set()
        if len(refs) == 1:
            field = input_schema.field_of(next(iter(refs)))
            if self.function == "sum" and field.dtype is DataType.INTEGER:
                return DataType.INTEGER
            return field.dtype
        return DataType.FLOAT

    def make_accumulator(self) -> Accumulator:
        if self.function == "count":
            inner = CountStar() if self.argument is None else CountValue()
        else:
            inner = _FACTORIES[self.function]()
        if self.distinct:
            return DistinctWrapper(inner)
        return inner

    def bind_argument(self, schema: Schema) -> Evaluator | None:
        """Compile the input expression (``None`` for count(*))."""
        if self.argument is None:
            return None
        return self.argument.bind(schema)

    def references(self) -> set[str]:
        return self.argument.references() if self.argument else set()

    def __repr__(self) -> str:
        arg = "*" if self.argument is None else repr(self.argument)
        return f"{self.function}({arg}) -> {self.output_name}"


def count_star(output_name: str = "cnt") -> AggregateSpec:
    """The workhorse of the paper: ``count(*) -> output_name``."""
    return AggregateSpec("count", None, output_name)


def agg(function: str, argument: Expression | None, output_name: str) -> AggregateSpec:
    """Shorthand constructor for an aggregate spec."""
    return AggregateSpec(function, argument, output_name)


class AggregateBlock:
    """A bound list of aggregates updated together (one GMDJ θ's ``l_i``)."""

    __slots__ = ("specs", "_evaluators")

    def __init__(
        self, specs: list[AggregateSpec], detail_schema: Schema
    ) -> None:
        self.specs = specs
        self._evaluators = [spec.bind_argument(detail_schema) for spec in specs]

    def new_state(self) -> list[Accumulator]:
        return [spec.make_accumulator() for spec in self.specs]

    def recompile(
        self, compiler: Callable[[Expression], Evaluator]
    ) -> None:
        """Swap in alternative argument evaluators (e.g. codegen'd ones).

        ``compiler`` must be a drop-in for ``argument.bind(detail_schema)``;
        count(*) specs keep their ``None`` evaluator.
        """
        self._evaluators = [
            None if spec.argument is None else compiler(spec.argument)
            for spec in self.specs
        ]

    def update(self, state: list[Accumulator], detail_row: tuple) -> None:
        stats = IOStats.ambient()
        for accumulator, evaluator in zip(state, self._evaluators):
            stats.aggregate_updates += 1
            if evaluator is None:
                accumulator.add(None)  # count(*): value is irrelevant
            else:
                accumulator.add(evaluator(detail_row))

    @staticmethod
    def finalize(state: list[Accumulator]) -> tuple:
        return tuple(accumulator.result() for accumulator in state)
