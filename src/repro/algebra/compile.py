"""Whole-expression codegen: one compiled function per expression tree.

:meth:`Expression.bind` produces a closure *per AST node*; evaluating a
bound predicate walks a chain of nested calls, paying Python call
overhead at every node for every tuple.  This module instead renders a
bound expression tree into **source code** for a single function and
``compile()``\\ s it — all operators become inline statements in one
frame, and the per-tuple cost collapses to plain bytecode.

Two forms are generated:

* **row form** (:func:`compile_row`): ``row -> value`` with exactly the
  signature and semantics of ``expression.bind(schema)`` — predicates
  return :class:`~repro.algebra.truth.Truth`, values return Python
  scalars with ``None`` for NULL.  A drop-in replacement for bound
  evaluators anywhere in the engine.
* **batch form** (:func:`compile_detail_filter`,
  :func:`compile_pair_filter`, :func:`compile_batch_keys`,
  :func:`compile_batch_values`): operates on decoded columns of a
  :class:`~repro.storage.columnar.ColumnarRelation` chunk and a list of
  row indices, looping *inside* the compiled frame.  Filters return the
  surviving indices (SQL truncation: only TRUE survives), key/value
  forms return one entry per index.

Inside generated code three-valued logic is carried as plain Python
objects — ``True``/``False`` for TRUE/FALSE and ``None`` for UNKNOWN —
and mapped back to :class:`Truth` only at a row-form boundary.  AND/OR
preserve the interpreter's exact short-circuit behaviour (the right
operand is evaluated unless the left already decides), NULL propagation
in arithmetic and ``/ 0 → NULL`` match
:class:`~repro.algebra.expressions.Arithmetic`, and comparisons reuse
the interpreter's :func:`~repro.algebra.expressions._compare` whenever
static type analysis cannot prove both operands are same-kinded (so the
string-vs-non-string :class:`~repro.errors.ExpressionError` fires with
identical text).  Expression node types this compiler does not know are
handled by falling back to ``bind`` — never by failing.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
    _compare,
)
from repro.algebra.truth import Truth
from repro.storage.schema import Schema
from repro.storage.types import DataType

#: ``row -> scalar-or-Truth`` — interchangeable with ``Expression.bind``.
RowFunction = Callable[[tuple], Any]
#: ``(cols, indices) -> surviving indices`` over detail columns only.
DetailFilter = Callable[[Sequence[list], Sequence[int]], list[int]]
#: ``(base_row, cols, indices) -> surviving indices`` over base ++ detail.
PairFilter = Callable[[tuple, Sequence[list], Sequence[int]], list[int]]
#: ``(cols, indices) -> one key tuple per index``.
BatchKeys = Callable[[Sequence[list], Sequence[int]], list[tuple]]
#: ``(cols, indices) -> one scalar per index``.
BatchValues = Callable[[Sequence[list], Sequence[int]], list[Any]]

_PY_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _cmp3(op_name: str, left: Any, right: Any) -> bool | None:
    """Checked comparison: the interpreter's ``_compare``, 3VL as objects."""
    verdict = _compare(op_name, left, right)
    if verdict is Truth.TRUE:
        return True
    if verdict is Truth.FALSE:
        return False
    return None


class _Fallback(Exception):
    """Raised during emission when a node cannot be compiled."""


class _Emitter:
    """Accumulates statements and constants for one generated function."""

    def __init__(self, resolve: Callable[["_Emitter", Column], str],
                 stringness: Callable[[Column], str]) -> None:
        self.lines: list[str] = []
        self.env: dict[str, Any] = {"_cmp3": _cmp3}
        self._serial = 0
        self._resolve = resolve
        self._stringness_of_column = stringness
        #: detail column positions referenced (for the batch prologue).
        self.detail_columns: set[int] = set()

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def temp(self) -> str:
        self._serial += 1
        return f"t{self._serial}"

    def const(self, value: Any) -> str:
        name = f"k{len(self.env)}"
        self.env[name] = value
        return name

    # -- static string-ness analysis (drives comparison inlining) ----------

    def _stringness(self, expr: Expression) -> str:
        """``"str"`` / ``"nonstr"`` / ``"null"`` / ``"unknown"``."""
        if isinstance(expr, Literal):
            if expr.value is None:
                return "null"
            return "str" if isinstance(expr.value, str) else "nonstr"
        if isinstance(expr, Column):
            return self._stringness_of_column(expr)
        if isinstance(expr, Arithmetic):
            left = self._stringness(expr.left)
            right = self._stringness(expr.right)
            if left == "nonstr" and right == "nonstr":
                return "nonstr"
            return "unknown"
        if isinstance(expr, Coalesce):
            first = self._stringness(expr.first)
            second = self._stringness(expr.second)
            if first == "null":
                return second
            if second == "null" or first == second:
                return first
            return "unknown"
        return "unknown"

    def _comparison_inline_ok(self, node: Comparison) -> bool:
        left = self._stringness(node.left)
        right = self._stringness(node.right)
        if left == "null" or right == "null":
            return True  # the NULL guard fires before the raw operator
        return (left == right and left in ("str", "nonstr"))

    # -- node emission ------------------------------------------------------

    def emit(self, expr: Expression, depth: int) -> str:
        """Emit statements computing ``expr``; returns the result atom."""
        if isinstance(expr, Literal):
            if expr.value is None:
                return "None"
            return self.const(expr.value)
        if isinstance(expr, TruthLiteral):
            if expr.value is Truth.TRUE:
                return "True"
            if expr.value is Truth.FALSE:
                return "False"
            return "None"
        if isinstance(expr, Column):
            return self._resolve(self, expr)
        if isinstance(expr, Arithmetic):
            return self._emit_arithmetic(expr, depth)
        if isinstance(expr, Comparison):
            return self._emit_comparison(expr, depth)
        if isinstance(expr, And):
            return self._emit_and(expr, depth)
        if isinstance(expr, Or):
            return self._emit_or(expr, depth)
        if isinstance(expr, Not):
            operand = self.emit(expr.operand, depth)
            result = self.temp()
            self.line(depth,
                      f"{result} = None if {operand} is None "
                      f"else not {operand}")
            return result
        if isinstance(expr, IsNull):
            operand = self.emit(expr.operand, depth)
            result = self.temp()
            check = "is not None" if expr.negated else "is None"
            self.line(depth, f"{result} = {operand} {check}")
            return result
        if isinstance(expr, Coalesce):
            first = self.emit(expr.first, depth)
            result = self.temp()
            self.line(depth, f"{result} = {first}")
            self.line(depth, f"if {result} is None:")
            second = self.emit(expr.second, depth + 1)
            self.line(depth + 1, f"{result} = {second}")
            return result
        raise _Fallback(f"no emitter for {type(expr).__name__}")

    def _emit_arithmetic(self, node: Arithmetic, depth: int) -> str:
        left = self.emit(node.left, depth)
        right = self.emit(node.right, depth)
        result = self.temp()
        if node.op == "/":
            self.line(depth,
                      f"{result} = None if {left} is None or {right} is None "
                      f"or {right} == 0 else {left} / {right}")
        else:
            self.line(depth,
                      f"{result} = None if {left} is None or {right} is None "
                      f"else {left} {node.op} {right}")
        return result

    def _emit_comparison(self, node: Comparison, depth: int) -> str:
        left = self.emit(node.left, depth)
        right = self.emit(node.right, depth)
        result = self.temp()
        if self._comparison_inline_ok(node):
            self.line(depth,
                      f"{result} = None if {left} is None or {right} is None "
                      f"else {left} {_PY_OPS[node.op]} {right}")
        else:
            self.line(depth,
                      f"{result} = _cmp3({node.op!r}, {left}, {right})")
        return result

    def _emit_and(self, node: And, depth: int) -> str:
        left = self.emit(node.left, depth)
        result = self.temp()
        self.line(depth, f"if {left} is False:")
        self.line(depth + 1, f"{result} = False")
        self.line(depth, "else:")
        right = self.emit(node.right, depth + 1)
        self.line(depth + 1,
                  f"{result} = False if {right} is False else None "
                  f"if {left} is None or {right} is None else True")
        return result

    def _emit_or(self, node: Or, depth: int) -> str:
        left = self.emit(node.left, depth)
        result = self.temp()
        self.line(depth, f"if {left} is True:")
        self.line(depth + 1, f"{result} = True")
        self.line(depth, "else:")
        right = self.emit(node.right, depth + 1)
        self.line(depth + 1,
                  f"{result} = True if {right} is True else None "
                  f"if {left} is None or {right} is None else False")
        return result


def _assemble(emitter: _Emitter, signature: str, body: list[str],
              name: str = "_fn") -> Any:
    source = "\n".join([f"def {name}({signature}):"] + body)
    code = compile(source, "<repro:codegen>", "exec")
    namespace = emitter.env
    exec(code, namespace)  # noqa: S102 - our own generated source
    return namespace[name]


def _column_stringness(schema: Schema) -> Callable[[Column], str]:
    def stringness(column: Column) -> str:
        try:
            position = schema.index_of(column.reference)
        except Exception:
            return "unknown"
        dtype = schema.fields[position].dtype
        if dtype is DataType.STRING:
            return "str"
        if dtype in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN):
            return "nonstr"
        return "unknown"
    return stringness


def _row_resolver(schema: Schema) -> Callable[[_Emitter, Column], str]:
    def resolve(emitter: _Emitter, column: Column) -> str:
        return f"row[{schema.index_of(column.reference)}]"
    return resolve


def _detail_resolver(schema: Schema) -> Callable[[_Emitter, Column], str]:
    def resolve(emitter: _Emitter, column: Column) -> str:
        position = schema.index_of(column.reference)
        emitter.detail_columns.add(position)
        return f"c{position}[i]"
    return resolve


def _pair_resolver(base_schema: Schema,
                   detail_schema: Schema) -> Callable[[_Emitter, Column], str]:
    combined = base_schema.concat(detail_schema)
    base_arity = len(base_schema)

    def resolve(emitter: _Emitter, column: Column) -> str:
        position = combined.index_of(column.reference)
        if position < base_arity:
            return f"b[{position}]"
        detail_position = position - base_arity
        emitter.detail_columns.add(detail_position)
        return f"c{detail_position}[i]"
    return resolve


def _prologue(emitter: _Emitter) -> list[str]:
    return [f"    c{position} = cols[{position}]"
            for position in sorted(emitter.detail_columns)]


# -- public entry points ------------------------------------------------------


def compile_row(expression: Expression, schema: Schema) -> RowFunction:
    """Compile to ``row -> value``; drop-in for ``expression.bind(schema)``."""
    emitter = _Emitter(_row_resolver(schema), _column_stringness(schema))
    try:
        atom = emitter.emit(expression, 1)
    except _Fallback:
        return expression.bind(schema)
    body = list(emitter.lines)
    if expression.is_predicate:
        emitter.env["_T"] = Truth.TRUE
        emitter.env["_F"] = Truth.FALSE
        emitter.env["_U"] = Truth.UNKNOWN
        body.append(f"    return _T if {atom} is True "
                    f"else _F if {atom} is False else _U")
    else:
        body.append(f"    return {atom}")
    result: RowFunction = _assemble(emitter, "row", body)
    return result


def compile_pair_row(expression: Expression, base_schema: Schema,
                     detail_schema: Schema) -> RowFunction:
    """Row form over the concatenated ``base ++ detail`` schema."""
    return compile_row(expression, base_schema.concat(detail_schema))


def compile_detail_filter(predicate: Expression,
                          detail_schema: Schema) -> DetailFilter:
    """Batch filter over detail columns alone (invariant-block residuals)."""
    emitter = _Emitter(_detail_resolver(detail_schema),
                       _column_stringness(detail_schema))
    try:
        atom = emitter.emit(predicate, 2)
    except _Fallback:
        bound = predicate.bind(detail_schema)

        def fallback(cols: Sequence[list],
                     indices: Sequence[int]) -> list[int]:
            return [i for i in indices
                    if bound(tuple(c[i] for c in cols)).is_true]
        return fallback
    body = _prologue(emitter)
    body += ["    out = []", "    ap = out.append", "    for i in indices:"]
    body += emitter.lines
    body += [f"        if {atom} is True:", "            ap(i)",
             "    return out"]
    result: DetailFilter = _assemble(emitter, "cols, indices", body)
    return result


def compile_pair_filter(predicate: Expression, base_schema: Schema,
                        detail_schema: Schema) -> PairFilter:
    """Batch filter of detail indices against one base row.

    The generated function receives the base row ``b``, the decoded
    detail columns, and candidate indices; it returns the indices whose
    combined tuple satisfies the predicate (TRUE only, per SQL
    truncation).
    """
    combined = base_schema.concat(detail_schema)
    emitter = _Emitter(_pair_resolver(base_schema, detail_schema),
                       _column_stringness(combined))
    try:
        atom = emitter.emit(predicate, 2)
    except _Fallback:
        bound = predicate.bind(combined)

        def fallback(b: tuple, cols: Sequence[list],
                     indices: Sequence[int]) -> list[int]:
            return [i for i in indices
                    if bound(b + tuple(c[i] for c in cols)).is_true]
        return fallback
    body = _prologue(emitter)
    body += ["    out = []", "    ap = out.append", "    for i in indices:"]
    body += emitter.lines
    body += [f"        if {atom} is True:", "            ap(i)",
             "    return out"]
    result: PairFilter = _assemble(emitter, "b, cols, indices", body)
    return result


def compile_batch_keys(key_expressions: Sequence[Expression],
                       detail_schema: Schema) -> BatchKeys:
    """Batch hash-key extraction: one key tuple per index."""
    emitter = _Emitter(_detail_resolver(detail_schema),
                       _column_stringness(detail_schema))
    try:
        atoms = [emitter.emit(expr, 2) for expr in key_expressions]
    except _Fallback:
        bound = [expr.bind(detail_schema) for expr in key_expressions]

        def fallback(cols: Sequence[list],
                     indices: Sequence[int]) -> list[tuple]:
            out = []
            for i in indices:
                row = tuple(c[i] for c in cols)
                out.append(tuple(ev(row) for ev in bound))
            return out
        return fallback
    body = _prologue(emitter)
    body += ["    out = []", "    ap = out.append", "    for i in indices:"]
    body += emitter.lines
    body += [f"        ap(({', '.join(atoms)},))", "    return out"]
    result: BatchKeys = _assemble(emitter, "cols, indices", body)
    return result


def compile_batch_values(expression: Expression,
                         detail_schema: Schema) -> BatchValues:
    """Batch scalar evaluation: one value per index (aggregate arguments)."""
    emitter = _Emitter(_detail_resolver(detail_schema),
                       _column_stringness(detail_schema))
    try:
        atom = emitter.emit(expression, 2)
    except _Fallback:
        bound = expression.bind(detail_schema)

        def fallback(cols: Sequence[list],
                     indices: Sequence[int]) -> list[Any]:
            return [bound(tuple(c[i] for c in cols)) for i in indices]
        return fallback
    body = _prologue(emitter)
    body += ["    out = []", "    ap = out.append", "    for i in indices:"]
    body += emitter.lines
    body += [f"        ap({atom})", "    return out"]
    result: BatchValues = _assemble(emitter, "cols, indices", body)
    return result
