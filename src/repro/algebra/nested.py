"""The nested query algebra (Bækgaard–Mark style, as used in the paper).

A :class:`NestedSelect` is a selection whose predicate may contain
*subquery predicates* in addition to ordinary comparisons:

* ``ScalarComparison``      — ``σ[x φ S]B`` where S yields a single value
  (a projected attribute, or an aggregate ``f(y)``);
* ``QuantifiedComparison``  — ``σ[x φ_some S]B`` / ``σ[x φ_all S]B``
  (``IN``/``NOT IN`` are the ``=_some`` / ``<>_all`` sugar);
* ``Exists``                — ``σ[∃S]B`` / ``σ[∄S]B``.

A :class:`Subquery` block records its *source* (R), its *predicate* θ
(which may reference attributes of enclosing blocks — *free references* —
and may itself contain subquery predicates: linear nesting), an optional
selected item ``y`` and an optional aggregate ``f(y)``.

``NestedSelect.evaluate`` implements **tuple-iteration semantics** — the
naive nested-loop evaluation the paper uses as the semantic definition and
as the slowest baseline.  Every other evaluation strategy in this library
(GMDJ translation, join unnesting, smart native loops) is tested for
bag-equivalence against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.expressions import (
    And,
    Column,
    Comparison,
    Evaluator,
    Expression,
    Literal,
    Not,
    Or,
    TruthLiteral,
)
from repro.algebra.truth import Truth
from repro.errors import CardinalityError, ExpressionError, UnknownAttributeError
from repro.storage.catalog import Catalog
from repro.storage.iostats import IOStats
from repro.storage.relation import Relation, Row
from repro.storage.schema import Schema

# An environment maps attribute spellings (qualified and bare) of enclosing
# scopes to values.  A bare name that is ambiguous in its scope maps to
# _AMBIGUOUS and raises only if actually referenced.
_AMBIGUOUS = object()

Environment = dict


def env_with_row(env: Environment, schema: Schema, row: Row) -> Environment:
    """Extend ``env`` with the bindings of one tuple of ``schema``.

    Inner bindings shadow outer ones, matching SQL scoping rules.
    """
    extended = dict(env)
    bare_seen: set[str] = set()
    for field_, value in zip(schema.fields, row):
        extended[field_.full_name] = value
        if field_.name in bare_seen:
            extended[field_.name] = _AMBIGUOUS
        else:
            bare_seen.add(field_.name)
            extended[field_.name] = value
    return extended


def substitute_free(
    expression: Expression, schema: Schema, env: Environment
) -> Expression:
    """Replace free references (not in ``schema``) with environment values.

    References resolvable in the local ``schema`` are left intact; anything
    else must be bound by ``env`` or an :class:`UnknownAttributeError` is
    raised.  The result is a closed expression over ``schema``.
    """
    if isinstance(expression, Column):
        if schema.has(expression.reference):
            return expression
        if expression.reference in env:
            value = env[expression.reference]
            if value is _AMBIGUOUS:
                raise UnknownAttributeError(
                    f"ambiguous outer reference {expression.reference!r}"
                )
            return Literal(value)
        raise UnknownAttributeError(
            f"unresolved reference {expression.reference!r} "
            f"(not in local schema, not bound by enclosing scopes)"
        )
    if isinstance(expression, (Literal, TruthLiteral)):
        return expression
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            substitute_free(expression.left, schema, env),
            substitute_free(expression.right, schema, env),
        )
    if isinstance(expression, And):
        return And(
            substitute_free(expression.left, schema, env),
            substitute_free(expression.right, schema, env),
        )
    if isinstance(expression, Or):
        return Or(
            substitute_free(expression.left, schema, env),
            substitute_free(expression.right, schema, env),
        )
    if isinstance(expression, Not):
        return Not(substitute_free(expression.operand, schema, env))
    # Arithmetic, IsNull and any other composite: rebuild generically.
    from repro.algebra.expressions import Arithmetic, IsNull

    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            substitute_free(expression.left, schema, env),
            substitute_free(expression.right, schema, env),
        )
    if isinstance(expression, IsNull):
        return IsNull(
            substitute_free(expression.operand, schema, env), expression.negated
        )
    if isinstance(expression, SubqueryPredicate):
        raise ExpressionError(
            "subquery predicates must be evaluated via evaluate_predicate, "
            "not substituted"
        )
    raise ExpressionError(f"cannot substitute into {expression!r}")


@dataclass(frozen=True, eq=False, repr=False)
class Subquery:
    """One subquery block: ``π[item] σ[predicate] source`` (+ optional f).

    ``source`` is any flat operator (usually a table scan with an alias).
    ``predicate`` is the block's θ; it may contain free references and
    nested :class:`SubqueryPredicate` leaves.  ``item`` is the selected
    expression for scalar/quantified forms (``None`` for EXISTS blocks).
    ``aggregate`` turns the block into an aggregate scalar subquery
    ``π[f(y)] σ[θ] R``.
    """

    source: Any  # Operator; typed loosely to avoid a circular import
    predicate: Expression
    item: Expression | None = None
    aggregate: AggregateSpec | None = None

    def __post_init__(self) -> None:
        if self.aggregate is not None and self.item is not None:
            raise ExpressionError("a subquery has either an item or an aggregate")

    def source_schema(self, catalog: Catalog) -> Schema:
        return self.source.schema(catalog)

    def __repr__(self) -> str:
        head = "pi["
        if self.aggregate is not None:
            head += repr(self.aggregate)
        elif self.item is not None:
            head += repr(self.item)
        head += "]"
        return f"Subquery({head} sigma[{self.predicate!r}] {self.source!r})"

    def matching_rows(
        self, catalog: Catalog, env: Environment
    ) -> Iterator[tuple[Row, Schema]]:
        """Tuple-iteration semantics: yield source rows satisfying θ.

        The subquery's own nested predicates are evaluated recursively;
        ``env`` supplies the values of enclosing scopes.
        """
        source = self.source.evaluate(catalog)
        schema = source.schema
        stats = IOStats.ambient()
        stats.record_scan(len(source))
        for row in source.rows:
            stats.predicate_evals += 1
            verdict = evaluate_predicate(
                self.predicate, schema, row, catalog, env
            )
            if verdict.is_true:
                yield row, schema

    def values(self, catalog: Catalog, env: Environment) -> list[Any]:
        """All values of the selected item over matching rows."""
        if self.item is None and self.aggregate is None:
            raise ExpressionError("EXISTS subqueries produce no values")
        out: list[Any] = []
        for row, schema in self.matching_rows(catalog, env):
            expression = self.item
            if expression is None:
                assert self.aggregate is not None
                expression = self.aggregate.argument
            if expression is None:  # count(*): value irrelevant
                out.append(None)
            else:
                closed = substitute_free(expression, schema, env)
                out.append(closed.bind(schema)(row))
        return out


class SubqueryPredicate(Expression):
    """Base class for predicate leaves that contain a subquery."""

    is_predicate = True
    subquery: Subquery

    def bind(self, schema: Schema) -> Evaluator:
        raise ExpressionError(
            "subquery predicates cannot be bound directly; evaluate them "
            "with evaluate_predicate or translate them away first"
        )

    def evaluate_for(
        self,
        outer_schema: Schema,
        outer_row: Row,
        catalog: Catalog,
        env: Environment,
    ) -> Truth:
        raise NotImplementedError

    def outer_references(self) -> set[str]:
        """References in the outer operand expression (if any)."""
        return set()


@dataclass(frozen=True, eq=False, repr=False)
class Exists(SubqueryPredicate):
    """``∃ S`` / ``∄ S`` — two-valued by definition."""

    subquery: Subquery
    negated: bool = False
    is_predicate = True

    def references(self) -> set[str]:
        return set()

    def evaluate_for(
        self,
        outer_schema: Schema,
        outer_row: Row,
        catalog: Catalog,
        env: Environment,
    ) -> Truth:
        inner_env = env_with_row(env, outer_schema, outer_row)
        for _ in self.subquery.matching_rows(catalog, inner_env):
            return Truth.of(not self.negated)
        return Truth.of(self.negated)

    def __repr__(self) -> str:
        symbol = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({symbol} {self.subquery!r})"


@dataclass(frozen=True, eq=False, repr=False)
class ScalarComparison(SubqueryPredicate):
    """``x φ S`` where S must yield at most one row (else a run-time error).

    When the subquery block carries an ``aggregate``, S is the aggregate
    value (always exactly one row, possibly NULL) — the
    ``σ[B.x φ π[f(R.y)]σ[θ](R)]B`` form of Table 1.
    """

    op: str
    outer: Expression
    subquery: Subquery
    is_predicate = True

    def references(self) -> set[str]:
        return self.outer.references()

    def outer_references(self) -> set[str]:
        return self.outer.references()

    def evaluate_for(
        self,
        outer_schema: Schema,
        outer_row: Row,
        catalog: Catalog,
        env: Environment,
    ) -> Truth:
        inner_env = env_with_row(env, outer_schema, outer_row)
        values = self.subquery.values(catalog, inner_env)
        if self.subquery.aggregate is not None:
            state = self.subquery.aggregate.make_accumulator()
            for value in values:
                state.add(value)
            scalar = state.result()
        else:
            if len(values) > 1:
                raise CardinalityError(
                    f"scalar subquery returned {len(values)} rows"
                )
            scalar = values[0] if values else None
        closed = substitute_free(self.outer, outer_schema, env)
        outer_value = closed.bind(outer_schema)(outer_row)
        return Comparison(self.op, Literal(outer_value), Literal(scalar)).bind(
            Schema(())
        )(())

    def __repr__(self) -> str:
        return f"({self.outer!r} {self.op} {self.subquery!r})"


@dataclass(frozen=True, eq=False, repr=False)
class QuantifiedComparison(SubqueryPredicate):
    """``x φ_some S`` / ``x φ_all S`` with full SQL 3-valued semantics.

    SOME: TRUE if the comparison is TRUE for at least one subquery row;
    FALSE if S is empty or the comparison is FALSE for every row;
    UNKNOWN otherwise.  ALL is the dual (TRUE on empty S — the footnote-2
    case that breaks the MAX shortcut).
    """

    op: str
    quantifier: str  # "some" | "all"
    outer: Expression
    subquery: Subquery
    is_predicate = True

    def __post_init__(self) -> None:
        if self.quantifier not in ("some", "all"):
            raise ExpressionError(f"bad quantifier {self.quantifier!r}")

    def references(self) -> set[str]:
        return self.outer.references()

    def outer_references(self) -> set[str]:
        return self.outer.references()

    def evaluate_for(
        self,
        outer_schema: Schema,
        outer_row: Row,
        catalog: Catalog,
        env: Environment,
    ) -> Truth:
        inner_env = env_with_row(env, outer_schema, outer_row)
        closed = substitute_free(self.outer, outer_schema, env)
        outer_value = closed.bind(outer_schema)(outer_row)
        saw_unknown = False
        saw_any = False
        empty_schema = Schema(())
        for value in self.subquery.values(catalog, inner_env):
            saw_any = True
            verdict = Comparison(
                self.op, Literal(outer_value), Literal(value)
            ).bind(empty_schema)(())
            if self.quantifier == "some":
                if verdict is Truth.TRUE:
                    return Truth.TRUE
                if verdict is Truth.UNKNOWN:
                    saw_unknown = True
            else:  # all
                if verdict is Truth.FALSE:
                    return Truth.FALSE
                if verdict is Truth.UNKNOWN:
                    saw_unknown = True
        if self.quantifier == "some":
            if not saw_any:
                return Truth.FALSE
            return Truth.UNKNOWN if saw_unknown else Truth.FALSE
        if not saw_any:
            return Truth.TRUE
        return Truth.UNKNOWN if saw_unknown else Truth.TRUE

    def __repr__(self) -> str:
        return f"({self.outer!r} {self.op}_{self.quantifier} {self.subquery!r})"


def in_predicate(outer: Expression, subquery: Subquery) -> QuantifiedComparison:
    """``x IN S  ≡  x =_some S`` (the paper's Section 2.1 definition)."""
    return QuantifiedComparison("=", "some", outer, subquery)


def not_in_predicate(outer: Expression, subquery: Subquery) -> QuantifiedComparison:
    """``x NOT IN S  ≡  x <>_all S``."""
    return QuantifiedComparison("<>", "all", outer, subquery)


def evaluate_predicate(
    predicate: Expression,
    schema: Schema,
    row: Row,
    catalog: Catalog,
    env: Environment,
) -> Truth:
    """Evaluate a (possibly nested) predicate for one tuple.

    This is the semantic definition of nested query evaluation: ordinary
    comparisons are closed against the environment and evaluated; subquery
    leaves re-run their subquery for this tuple (tuple iteration).
    """
    if isinstance(predicate, SubqueryPredicate):
        return predicate.evaluate_for(schema, row, catalog, env)
    if isinstance(predicate, And):
        left = evaluate_predicate(predicate.left, schema, row, catalog, env)
        if left is Truth.FALSE:
            return Truth.FALSE
        right = evaluate_predicate(predicate.right, schema, row, catalog, env)
        return left.and_(right)
    if isinstance(predicate, Or):
        left = evaluate_predicate(predicate.left, schema, row, catalog, env)
        if left is Truth.TRUE:
            return Truth.TRUE
        right = evaluate_predicate(predicate.right, schema, row, catalog, env)
        return left.or_(right)
    if isinstance(predicate, Not):
        return evaluate_predicate(
            predicate.operand, schema, row, catalog, env
        ).not_()
    closed = substitute_free(predicate, schema, env)
    return closed.bind(schema)(row)


@dataclass
class NestedSelect:
    """``σ[W] child`` where W may contain subquery predicates.

    This type implements the :class:`~repro.algebra.operators.Operator`
    protocol, so nested selections compose with the flat algebra (and may
    appear as subquery sources — linearly nested queries).
    """

    child: Any  # Operator
    predicate: Expression

    def children(self) -> tuple[Any, ...]:
        return (self.child,)

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog)

    def evaluate(self, catalog: Catalog) -> Relation:
        return self.evaluate_in(catalog, {})

    def evaluate_in(self, catalog: Catalog, env: Environment) -> Relation:
        """Tuple-iteration evaluation under an enclosing environment."""
        source = self.child.evaluate(catalog)
        stats = IOStats.ambient()
        stats.record_scan(len(source))
        rows = []
        for row in source.rows:
            stats.predicate_evals += 1
            verdict = evaluate_predicate(
                self.predicate, source.schema, row, catalog, env
            )
            if verdict.is_true:
                rows.append(row)
        stats.tuples_output += len(rows)
        return Relation(source.schema, rows, validate=False)


def collect_subquery_predicates(predicate: Expression) -> list[SubqueryPredicate]:
    """All subquery leaves of a predicate tree, left to right."""
    if isinstance(predicate, SubqueryPredicate):
        return [predicate]
    if isinstance(predicate, (And, Or)):
        return collect_subquery_predicates(
            predicate.left
        ) + collect_subquery_predicates(predicate.right)
    if isinstance(predicate, Not):
        return collect_subquery_predicates(predicate.operand)
    return []


def has_subqueries(predicate: Expression) -> bool:
    return bool(collect_subquery_predicates(predicate))


def free_references(
    subquery: Subquery, catalog: Catalog
) -> set[str]:
    """References in a block's predicate that its own source cannot resolve.

    These are the paper's *free references*; a predicate containing one is a
    *correlation predicate*.  Nested blocks are scanned recursively (their
    own sources extend the local scope), which is how *non-neighboring*
    predicates are discovered.
    """
    schema = subquery.source_schema(catalog)
    return _free_references_in(subquery.predicate, schema, catalog) | (
        _free_references_in(subquery.item, schema, catalog)
        if subquery.item is not None
        else set()
    ) | (
        _free_references_in(subquery.aggregate.argument, schema, catalog)
        if subquery.aggregate is not None and subquery.aggregate.argument is not None
        else set()
    )


def _free_references_in(
    predicate: Expression, schema: Schema, catalog: Catalog
) -> set[str]:
    if isinstance(predicate, SubqueryPredicate):
        free = {
            ref
            for ref in predicate.outer_references()
            if not schema.has(ref)
        }
        inner_schema = predicate.subquery.source_schema(catalog)
        # References free in the inner block that this block also cannot
        # resolve remain free here (non-neighboring candidates).
        for ref in free_references(predicate.subquery, catalog):
            if not schema.has(ref):
                free.add(ref)
        del inner_schema
        return free
    if isinstance(predicate, (And, Or)):
        return _free_references_in(predicate.left, schema, catalog) | (
            _free_references_in(predicate.right, schema, catalog)
        )
    if isinstance(predicate, Not):
        return _free_references_in(predicate.operand, schema, catalog)
    return {ref for ref in predicate.references() if not schema.has(ref)}
