"""Recursive-descent parser for the subquery SQL subset.

Grammar (roughly)::

    query      := SELECT [DISTINCT] (STAR | item ("," item)*)
                  FROM table [alias] ("," table [alias])*
                  [WHERE predicate]
                  [GROUP BY column ("," column)*]
                  [HAVING predicate]
                  [ORDER BY order_item ("," order_item)*]
    predicate  := or_term
    or_term    := and_term (OR and_term)*
    and_term   := not_term (AND not_term)*
    not_term   := NOT not_term | primary_pred
    primary    := "(" predicate ")"
                | EXISTS "(" query ")"
                | expr IS [NOT] NULL
                | expr [NOT] IN "(" query ")"
                | expr [NOT] BETWEEN expr AND expr
                | expr compop [SOME|ANY|ALL] ("(" query ")" | expr)
    expr       := add_expr with ``* /`` binding tighter than ``+ -``
    atom       := literal | column_ref | func "(" (STAR|expr) ")" | "(" expr ")"

``ANY`` parses as SOME (the SQL synonym the paper notes in Section 2.1).
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    AndPredicate,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    Comparison,
    ExistsPredicate,
    FunctionCall,
    InPredicate,
    IsNullPredicate,
    NotPredicate,
    NullLiteral,
    NumberLiteral,
    OrPredicate,
    OrderItem,
    SelectItem,
    SelectStatement,
    StringLiteral,
    TableRef,
)
from repro.sql.lexer import Token, tokenize

_COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")
_AGGREGATES = ("count", "sum", "avg", "min", "max")


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # -- token plumbing ------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self._fail(f"expected {word}")

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            self._fail(f"expected {op!r}")

    def _fail(self, message: str):
        token = self.current
        raise SQLSyntaxError(
            f"{message}, found {token.kind} {token.text!r}", token.position
        )

    # -- entry ------------------------------------------------------------------------

    def parse(self):
        statement = self.parse_statement()
        if self.current.kind != "EOF":
            self._fail("trailing input after query")
        return statement

    def parse_statement(self):
        """A SELECT, possibly compounded with UNION/EXCEPT/INTERSECT."""
        from repro.sql.ast_nodes import CompoundSelect

        statement = self.parse_select()
        while True:
            operator = None
            for keyword in ("UNION", "EXCEPT", "INTERSECT"):
                if self.accept_keyword(keyword):
                    operator = keyword.lower()
                    break
            if operator is None:
                return statement
            all_rows = self.accept_keyword("ALL")
            right = self.parse_select()
            statement = CompoundSelect(operator, all_rows, statement, right)

    # -- SELECT blocks -----------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items: list[SelectItem] = []
        if self.accept_op("*"):
            pass  # SELECT * — items stay empty
        else:
            items.append(self._select_item())
            while self.accept_op(","):
                items.append(self._select_item())
        self.expect_keyword("FROM")
        tables = [self._table_ref()]
        while self.accept_op(","):
            tables.append(self._table_ref())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        group_by: list[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self._column_ref())
            while self.accept_op(","):
                group_by.append(self._column_ref())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_predicate()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            if self.current.kind != "NUMBER":
                self._fail("expected a number after LIMIT")
            limit = int(self.advance().text)
            if self.accept_keyword("OFFSET"):
                if self.current.kind != "NUMBER":
                    self._fail("expected a number after OFFSET")
                offset = int(self.advance().text)
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            distinct=distinct,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            if self.current.kind != "IDENT":
                self._fail("expected alias after AS")
            alias = self.advance().text
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return SelectItem(expression, alias)

    def _table_ref(self) -> TableRef:
        if self.current.kind != "IDENT":
            self._fail("expected table name")
        name = self.advance().text
        alias = None
        if self.accept_keyword("AS"):
            if self.current.kind != "IDENT":
                self._fail("expected alias after AS")
            alias = self.advance().text
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return TableRef(name, alias)

    def _order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression, descending)

    def _column_ref(self) -> ColumnRef:
        if self.current.kind != "IDENT":
            self._fail("expected column reference")
        first = self.advance().text
        if self.accept_op("."):
            if self.current.kind != "IDENT":
                self._fail("expected column name after '.'")
            return ColumnRef(first, self.advance().text)
        return ColumnRef(None, first)

    # -- predicates -------------------------------------------------------------------

    def parse_predicate(self):
        return self._or_term()

    def _or_term(self):
        left = self._and_term()
        while self.accept_keyword("OR"):
            left = OrPredicate(left, self._and_term())
        return left

    def _and_term(self):
        left = self._not_term()
        while self.accept_keyword("AND"):
            left = AndPredicate(left, self._not_term())
        return left

    def _not_term(self):
        if self.accept_keyword("NOT"):
            return NotPredicate(self._not_term())
        return self._primary_predicate()

    def _primary_predicate(self):
        if self.current.is_keyword("EXISTS"):
            self.advance()
            self.expect_op("(")
            query = self.parse_select()
            self.expect_op(")")
            return ExistsPredicate(query)
        if self.current.is_op("("):
            # Could be a parenthesized predicate or a parenthesized
            # expression beginning a comparison; try predicate first.
            saved = self.position
            self.advance()
            try:
                inner = self.parse_predicate()
                self.expect_op(")")
                if self._at_comparison():
                    # It was an expression after all (e.g. ``(a + b) > 1``
                    # never reaches here because + parses as expression,
                    # but ``(a = b) ...`` style is rejected); rewind.
                    raise SQLSyntaxError("reparse as expression")
                return inner
            except SQLSyntaxError:
                self.position = saved
        expression = self.parse_expression()
        return self._predicate_tail(expression)

    def _at_comparison(self) -> bool:
        token = self.current
        return token.kind == "OP" and token.text in _COMPARE_OPS

    def _predicate_tail(self, expression):
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNullPredicate(expression, negated)
        negated = self.accept_keyword("NOT")
        if self.accept_keyword("IN"):
            self.expect_op("(")
            query = self.parse_select()
            self.expect_op(")")
            return InPredicate(expression, query, negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_expression()
            self.expect_keyword("AND")
            high = self.parse_expression()
            return BetweenPredicate(expression, low, high, negated)
        if negated:
            self._fail("expected IN or BETWEEN after NOT")
        if self.current.kind == "OP" and self.current.text in _COMPARE_OPS:
            op = self.advance().text
            quantifier = None
            if self.accept_keyword("SOME") or self.accept_keyword("ANY"):
                quantifier = "some"
            elif self.accept_keyword("ALL"):
                quantifier = "all"
            if quantifier is not None:
                self.expect_op("(")
                query = self.parse_select()
                self.expect_op(")")
                return Comparison(op, expression, query, quantifier)
            # A scalar subquery on the right parses via _factor, which
            # recognizes "(SELECT" in expression position.
            right = self.parse_expression()
            return Comparison(op, expression, right, None)
        self._fail("expected a predicate")

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self):
        left = self._term()
        while self.current.kind == "OP" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self._term())
        return left

    def _term(self):
        left = self._factor()
        while self.current.kind == "OP" and self.current.text in ("*", "/"):
            op = self.advance().text
            left = BinaryOp(op, left, self._factor())
        return left

    def _factor(self):
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return NumberLiteral(token.text)
        if token.kind == "STRING":
            self.advance()
            return StringLiteral(token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return NullLiteral()
        if token.is_op("-"):
            self.advance()
            operand = self._factor()
            return BinaryOp("-", NumberLiteral("0"), operand)
        if token.is_op("("):
            self.advance()
            if self.current.is_keyword("SELECT"):
                from repro.sql.ast_nodes import ScalarSubquery

                query = self.parse_select()
                self.expect_op(")")
                return ScalarSubquery(query)
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if token.kind == "IDENT":
            name = self.advance().text
            if self.current.is_op("("):
                lowered = name.lower()
                if lowered not in _AGGREGATES:
                    self._fail(f"unknown function {name!r}")
                self.advance()
                distinct = self.accept_keyword("DISTINCT")
                if self.accept_op("*"):
                    if distinct:
                        self._fail("DISTINCT * is not allowed")
                    argument = None
                else:
                    argument = self.parse_expression()
                self.expect_op(")")
                return FunctionCall(lowered, argument, distinct)
            if self.accept_op("."):
                if self.current.kind != "IDENT":
                    self._fail("expected column name after '.'")
                return ColumnRef(name, self.advance().text)
            return ColumnRef(None, name)
        self._fail("expected an expression")


def parse_sql(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse()
