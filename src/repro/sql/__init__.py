"""SQL frontend: lexer, parser, and binder for the subquery SQL subset."""

from repro.sql.binder import Binder, compile_sql
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import Parser, parse_sql

__all__ = ["Binder", "Parser", "Token", "compile_sql", "parse_sql", "tokenize"]
