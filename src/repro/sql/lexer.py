"""SQL lexer for the subquery-oriented SQL subset.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive; identifiers keep their original spelling.  String
literals use single quotes with ``''`` as the escape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "EXISTS",
    "IN", "IS", "NULL", "SOME", "ANY", "ALL", "AS", "GROUP", "BY",
    "ORDER", "ASC", "DESC", "HAVING", "BETWEEN", "LIMIT", "OFFSET",
    "UNION", "EXCEPT", "INTERSECT",
}

#: Multi-character operators first so maximal munch applies.
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".",
             "*", "+", "-", "/")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "OP" and self.text == op


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`SQLSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            j = i + 1
            pieces: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        pieces.append("'")
                        j += 2
                        continue
                    break
                pieces.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(pieces), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit terminates the number
                    # (e.g. ``t.1`` is malformed anyway, but ``1.x`` never
                    # happens; qualified refs never start with a digit).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", "<>" if op == "!=" else op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
