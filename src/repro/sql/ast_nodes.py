"""Abstract syntax for the SQL subset.

The AST is deliberately close to SQL's surface structure; all semantic
work (scoping, subquery classification, algebra construction) happens in
:mod:`repro.sql.binder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SqlNode:
    """Base class for all SQL AST nodes."""


# -- scalar expressions --------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef(SqlNode):
    """``name`` or ``qualifier.name``."""

    qualifier: str | None
    name: str

    @property
    def reference(self) -> str:
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"


@dataclass(frozen=True)
class NumberLiteral(SqlNode):
    text: str

    @property
    def value(self):
        return float(self.text) if "." in self.text else int(self.text)


@dataclass(frozen=True)
class StringLiteral(SqlNode):
    value: str


@dataclass(frozen=True)
class NullLiteral(SqlNode):
    pass


@dataclass(frozen=True)
class BinaryOp(SqlNode):
    """Arithmetic: ``+ - * /``."""

    op: str
    left: SqlNode
    right: SqlNode


@dataclass(frozen=True)
class FunctionCall(SqlNode):
    """``count(*)``, ``sum(expr)``, ... — only aggregates are supported."""

    name: str  # lowercased
    argument: SqlNode | None  # None encodes ``*``
    distinct: bool = False


@dataclass(frozen=True)
class ScalarSubquery(SqlNode):
    """``(SELECT ...)`` used in expression position.

    In a comparison's right operand this is the classic scalar subquery
    predicate; in a SELECT list it becomes an APPLY (one value computed
    per outer row).
    """

    query: "SelectStatement"


# -- predicates ---------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(SqlNode):
    """``left φ right`` or ``left φ SOME|ALL (subquery)``."""

    op: str
    left: SqlNode
    right: SqlNode  # expression or SelectStatement
    quantifier: str | None = None  # None | "some" | "all"


@dataclass(frozen=True)
class InPredicate(SqlNode):
    expression: SqlNode
    query: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ExistsPredicate(SqlNode):
    query: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class IsNullPredicate(SqlNode):
    expression: SqlNode
    negated: bool = False


@dataclass(frozen=True)
class BetweenPredicate(SqlNode):
    expression: SqlNode
    low: SqlNode
    high: SqlNode
    negated: bool = False


@dataclass(frozen=True)
class NotPredicate(SqlNode):
    operand: SqlNode


@dataclass(frozen=True)
class AndPredicate(SqlNode):
    left: SqlNode
    right: SqlNode


@dataclass(frozen=True)
class OrPredicate(SqlNode):
    left: SqlNode
    right: SqlNode


# -- query structure --------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(SqlNode):
    expression: SqlNode
    alias: str | None = None


@dataclass(frozen=True)
class TableRef(SqlNode):
    name: str
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem(SqlNode):
    expression: SqlNode
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement(SqlNode):
    """One SELECT block; ``items`` empty means ``SELECT *``."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: SqlNode | None = None
    distinct: bool = False
    group_by: tuple[ColumnRef, ...] = field(default=())
    having: SqlNode | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    offset: int = 0

    @property
    def is_star(self) -> bool:
        return not self.items


@dataclass(frozen=True)
class CompoundSelect(SqlNode):
    """``left UNION|EXCEPT|INTERSECT [ALL] right``.

    Chains left-associatively: ``a UNION b EXCEPT c`` parses as
    ``(a UNION b) EXCEPT c``.
    """

    operator: str  # "union" | "except" | "intersect"
    all: bool
    left: "SelectStatement | CompoundSelect"
    right: SelectStatement
