"""Binding: SQL AST → (possibly nested) algebra trees.

The binder resolves table names against the catalog, builds
:class:`~repro.algebra.nested.Subquery` blocks for EXISTS/IN/quantified/
scalar subqueries, and assembles projection/grouping/ordering on top.
Column references are carried through symbolically (``alias.name``); the
algebra resolves them at bind-or-evaluate time with proper SQL scoping
(inner scope shadows outer), so correlated references "just work".
"""

from __future__ import annotations

from repro.algebra import aggregates as agg_mod
from repro.algebra.expressions import (
    Arithmetic,
    Column,
    Comparison as AlgComparison,
    Expression,
    Literal,
    Not,
    TRUE,
)
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    has_subqueries,
    in_predicate,
    not_in_predicate,
)
from repro.algebra.operators import (
    GroupBy,
    Join,
    Operator,
    OrderBy,
    Project,
    ProjectItem,
    ScanTable,
    Select,
)
from repro.errors import BindError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_sql
from repro.storage.catalog import Catalog


class Binder:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._fresh = 0

    # -- statements ---------------------------------------------------------------

    def bind_statement(self, statement) -> Operator:
        if isinstance(statement, ast.CompoundSelect):
            return self._bind_compound(statement)
        source = self._bind_from(statement.tables)
        plan: Operator = source
        if statement.where is not None:
            predicate = self.bind_predicate(statement.where)
            if has_subqueries(predicate):
                plan = NestedSelect(plan, predicate)
            else:
                plan = Select(plan, predicate)
        plan = self._bind_output(statement, plan)
        if statement.order_by:
            keys = []
            for item in statement.order_by:
                if not isinstance(item.expression, ast.ColumnRef):
                    raise BindError("ORDER BY supports column references only")
                keys.append((item.expression.reference, item.descending))
            plan = OrderBy(plan, keys)
        if statement.limit is not None:
            from repro.algebra.operators import Limit

            plan = Limit(plan, statement.limit, statement.offset)
        return plan

    def _bind_compound(self, statement: ast.CompoundSelect) -> Operator:
        from repro.algebra.operators import Difference, Intersect, Union

        left = self.bind_statement(statement.left)
        right = self.bind_statement(statement.right)
        distinct = not statement.all
        if statement.operator == "union":
            return Union(left, right, distinct=distinct)
        if statement.operator == "except":
            return Difference(left, right, distinct=distinct)
        return Intersect(left, right, distinct=distinct)

    def _bind_from(self, tables) -> Operator:
        if not tables:
            raise BindError("FROM clause is empty")
        plans: list[Operator] = []
        for table in tables:
            if not self.catalog.has_table(table.name):
                raise BindError(f"unknown table {table.name!r}")
            plans.append(ScanTable(table.name, table.alias or table.name))
        plan = plans[0]
        for right in plans[1:]:
            plan = Join(plan, right, TRUE, kind="inner", method="nested")
        return plan

    # -- output shaping (projection / grouping / having) ----------------------------

    def _bind_output(self, statement: ast.SelectStatement,
                     plan: Operator) -> Operator:
        if statement.is_star:
            if statement.group_by or statement.having is not None:
                raise BindError("SELECT * cannot be combined with GROUP BY")
            if statement.distinct:
                from repro.algebra.operators import Distinct

                return Distinct(plan)
            return plan
        specs: list[agg_mod.AggregateSpec] = []
        applies: list = []
        rewritten: list[tuple[Expression, str]] = []
        for index, item in enumerate(statement.items):
            expression = self._rewrite_aggregates(item.expression, specs,
                                                  applies)
            name = item.alias or self._default_name(item.expression, index)
            rewritten.append((expression, name))
        having_expr = None
        if statement.having is not None:
            having_expr = self._rewrite_aggregates_pred(statement.having, specs)
        if applies and (specs or statement.group_by):
            raise BindError(
                "scalar subqueries in the SELECT list cannot be combined "
                "with GROUP BY or outer aggregates"
            )
        if specs or statement.group_by:
            keys = [ref.reference for ref in statement.group_by]
            plan = GroupBy(plan, keys, specs)
            if having_expr is not None:
                if has_subqueries(having_expr):
                    # HAVING with subqueries: a nested selection over the
                    # grouped result, so the whole strategy machinery
                    # (including the GMDJ rewrite) applies to it.
                    plan = NestedSelect(plan, having_expr)
                else:
                    plan = Select(plan, having_expr)
        elif statement.having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")
        for subquery, mode, output_name in applies:
            from repro.algebra.apply_op import Apply

            plan = Apply(plan, subquery, mode, output_name)
        items = [
            ProjectItem(expression, name,
                        preserve=isinstance(expression, Column) and
                        name == expression.bare_name)
            for expression, name in rewritten
        ]
        return Project(plan, items, distinct=statement.distinct)

    def _default_name(self, expression: ast.SqlNode, index: int) -> str:
        if isinstance(expression, ast.ColumnRef):
            return expression.name
        if isinstance(expression, ast.FunctionCall):
            return expression.name
        return f"col{index + 1}"

    def _rewrite_aggregates(self, node: ast.SqlNode, specs: list,
                            applies: list | None = None) -> Expression:
        """Bind an output expression, pulling aggregates into ``specs``
        and SELECT-list scalar subqueries into ``applies``."""
        if isinstance(node, ast.FunctionCall):
            name = self._fresh_name(node.name)
            argument = (
                None if node.argument is None
                else self.bind_expression(node.argument)
            )
            specs.append(
                agg_mod.AggregateSpec(node.name, argument, name,
                                      node.distinct)
            )
            return Column(name)
        if isinstance(node, ast.ScalarSubquery):
            if applies is None:
                raise BindError(
                    "scalar subqueries are not allowed in this context"
                )
            subquery = self._bind_subquery(node.query, need_item=True)
            mode = "aggregate" if subquery.aggregate is not None else "scalar"
            name = self._fresh_name("sq")
            applies.append((subquery, mode, name))
            return Column(name)
        if isinstance(node, ast.BinaryOp):
            return Arithmetic(
                node.op,
                self._rewrite_aggregates(node.left, specs, applies),
                self._rewrite_aggregates(node.right, specs, applies),
            )
        return self.bind_expression(node)

    def _rewrite_aggregates_pred(self, node: ast.SqlNode, specs) -> Expression:
        """Bind a HAVING predicate: aggregates become group columns,
        subqueries become subquery predicates over the grouped rows."""
        if isinstance(node, ast.AndPredicate):
            return self._rewrite_aggregates_pred(node.left, specs) & (
                self._rewrite_aggregates_pred(node.right, specs)
            )
        if isinstance(node, ast.OrPredicate):
            return self._rewrite_aggregates_pred(node.left, specs) | (
                self._rewrite_aggregates_pred(node.right, specs)
            )
        if isinstance(node, ast.NotPredicate):
            return Not(self._rewrite_aggregates_pred(node.operand, specs))
        if isinstance(node, ast.Comparison):
            left = self._rewrite_aggregates(node.left, specs)
            right_node = node.right
            if isinstance(right_node, ast.ScalarSubquery):
                right_node = right_node.query
            if isinstance(right_node, ast.SelectStatement):
                subquery = self._bind_subquery(right_node, need_item=True)
                if node.quantifier is not None:
                    return QuantifiedComparison(
                        node.op, node.quantifier, left, subquery
                    )
                return ScalarComparison(node.op, left, subquery)
            return AlgComparison(
                node.op, left, self._rewrite_aggregates(right_node, specs)
            )
        if isinstance(node, ast.ExistsPredicate):
            return Exists(self._bind_subquery(node.query, need_item=False),
                          node.negated)
        if isinstance(node, ast.InPredicate):
            subquery = self._bind_subquery(node.query, need_item=True)
            outer = self._rewrite_aggregates(node.expression, specs)
            if node.negated:
                return not_in_predicate(outer, subquery)
            return in_predicate(outer, subquery)
        raise BindError(
            "HAVING supports comparisons over aggregates, EXISTS, IN, and "
            "subquery comparisons"
        )

    def _fresh_name(self, stem: str) -> str:
        self._fresh += 1
        return f"{stem}_{self._fresh}"

    # -- predicates -----------------------------------------------------------------

    def bind_predicate(self, node: ast.SqlNode) -> Expression:
        if isinstance(node, ast.AndPredicate):
            return self.bind_predicate(node.left) & self.bind_predicate(node.right)
        if isinstance(node, ast.OrPredicate):
            return self.bind_predicate(node.left) | self.bind_predicate(node.right)
        if isinstance(node, ast.NotPredicate):
            return Not(self.bind_predicate(node.operand))
        if isinstance(node, ast.IsNullPredicate):
            from repro.algebra.expressions import IsNull

            return IsNull(self.bind_expression(node.expression), node.negated)
        if isinstance(node, ast.BetweenPredicate):
            expression = self.bind_expression(node.expression)
            low = self.bind_expression(node.low)
            high = self.bind_expression(node.high)
            between = (AlgComparison(">=", expression, low)
                       & AlgComparison("<=", expression, high))
            return Not(between) if node.negated else between
        if isinstance(node, ast.ExistsPredicate):
            return Exists(self._bind_subquery(node.query, need_item=False),
                          node.negated)
        if isinstance(node, ast.InPredicate):
            subquery = self._bind_subquery(node.query, need_item=True)
            outer = self.bind_expression(node.expression)
            if node.negated:
                return not_in_predicate(outer, subquery)
            return in_predicate(outer, subquery)
        if isinstance(node, ast.Comparison):
            left = self.bind_expression(node.left)
            right_node = node.right
            if isinstance(right_node, ast.ScalarSubquery):
                right_node = right_node.query
            if isinstance(right_node, ast.SelectStatement):
                subquery = self._bind_subquery(right_node, need_item=True)
                if node.quantifier is not None:
                    return QuantifiedComparison(
                        node.op, node.quantifier, left, subquery
                    )
                return ScalarComparison(node.op, left, subquery)
            right = self.bind_expression(right_node)
            return AlgComparison(node.op, left, right)
        raise BindError(f"cannot bind predicate {node!r}")

    def _bind_subquery(self, statement: ast.SelectStatement,
                       need_item: bool) -> Subquery:
        if statement.group_by or statement.having is not None:
            raise BindError("subqueries with GROUP BY/HAVING are not supported")
        if statement.order_by:
            raise BindError("ORDER BY inside a subquery has no effect")
        source = self._bind_from(statement.tables)
        predicate = (
            self.bind_predicate(statement.where)
            if statement.where is not None
            else TRUE
        )
        item: Expression | None = None
        aggregate = None
        if need_item:
            if statement.is_star or len(statement.items) != 1:
                raise BindError(
                    "a comparison/IN subquery must select exactly one item"
                )
            expression = statement.items[0].expression
            if isinstance(expression, ast.FunctionCall):
                argument = (
                    None if expression.argument is None
                    else self.bind_expression(expression.argument)
                )
                aggregate = agg_mod.AggregateSpec(
                    expression.name, argument,
                    self._fresh_name(expression.name), expression.distinct,
                )
            else:
                item = self.bind_expression(expression)
        return Subquery(source, predicate, item=item, aggregate=aggregate)

    # -- scalar expressions -------------------------------------------------------------

    def bind_expression(self, node: ast.SqlNode) -> Expression:
        if isinstance(node, ast.ColumnRef):
            return Column(node.reference)
        if isinstance(node, ast.NumberLiteral):
            return Literal(node.value)
        if isinstance(node, ast.StringLiteral):
            return Literal(node.value)
        if isinstance(node, ast.NullLiteral):
            return Literal(None)
        if isinstance(node, ast.BinaryOp):
            return Arithmetic(
                node.op,
                self.bind_expression(node.left),
                self.bind_expression(node.right),
            )
        if isinstance(node, ast.FunctionCall):
            raise BindError(
                "aggregate functions are only allowed in SELECT lists and "
                "scalar subqueries"
            )
        if isinstance(node, ast.ScalarSubquery):
            raise BindError(
                "a scalar subquery is not allowed in this expression "
                "position (supported: comparison operands and SELECT items)"
            )
        raise BindError(f"cannot bind expression {node!r}")


def compile_sql(text: str, catalog: Catalog) -> Operator:
    """Parse and bind one SQL statement into an algebra tree."""
    return Binder(catalog).bind_statement(parse_sql(text))
