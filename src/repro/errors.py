"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The hierarchy mirrors the major subsystems: storage,
algebra/type checking, SQL parsing and binding, and query planning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """Schema construction or attribute resolution failed."""


class AmbiguousAttributeError(SchemaError):
    """An attribute reference matched more than one column."""


class UnknownAttributeError(SchemaError):
    """An attribute reference matched no column."""


class TypeCheckError(ReproError):
    """A value or expression does not conform to the expected type."""


class CatalogError(ReproError):
    """A catalog operation referenced a missing or duplicate object."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be evaluated."""


class CardinalityError(ReproError):
    """A scalar subquery (or comparison subquery) returned more than one row.

    This is the run-time exception the SQL standard mandates for scalar
    subqueries; the paper notes handling it is orthogonal to the rewrite
    (Section 3.1), so we surface it explicitly.
    """


class TranslationError(ReproError):
    """The unnesting algorithm could not translate a nested expression."""


class ConfigurationError(ReproError, ValueError):
    """An evaluation parameter is out of range (memory budget, partition
    count, fuzzer knobs).

    Also a :class:`ValueError` because a bad parameter is an invalid
    argument in the plain Python sense; callers that catch either base
    class keep working.
    """


class InvariantViolation(ReproError):
    """A finished trace contradicts one of the paper's cost guarantees.

    Raised by the strict mode of :func:`repro.obs.invariants.check_trace`
    when, e.g., a GMDJ span shows more than one scan of its detail
    relation (Prop. 4.1), emits more rows than its base has (Def. 2.1),
    or base-tuple completion changed the scan count (Thms. 4.1/4.2).
    """


class CertificateViolation(InvariantViolation):
    """Observed data contradicts a static capability certificate.

    Raised when a column the abstract interpreter certified NEVER-null
    (:func:`repro.lint.absint.certify_capabilities`) is observed holding
    a NULL — either by the strict mode of
    :func:`repro.obs.invariants.check_capabilities` over result rows, or
    eagerly by the columnar encoder when a certificate authorized it to
    skip validity-mask work.  A certificate violation is always an
    analysis bug (or a deliberately seeded one in the fuzz harness),
    never a data error: the lattice is meant to over-approximate.
    """


class LintError(ReproError):
    """The static plan verifier found an error-severity diagnostic.

    Raised by the planner's fail-fast lint pass
    (``QueryOptions(lint="strict")``) before any operator executes; the
    offending :class:`~repro.lint.diagnostics.PlanDiagnostic` list is
    attached as ``diagnostics``.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class SQLSyntaxError(ReproError):
    """The SQL lexer or parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """The SQL binder could not resolve names against the catalog."""


class PlanError(ReproError):
    """The planner could not produce a physical plan for the request."""
