"""ASCII charts for the benchmark reports.

The paper's figures are line charts of evaluation time vs workload size,
one series per strategy.  This module renders the same data as a
terminal-friendly chart so ``benchmark_results/*.txt`` shows the *shape*
at a glance — log-scaled horizontal bars, one row per (point, strategy).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.runner import ComparisonResult

#: Width of the bar area in characters.
BAR_WIDTH = 50


def ascii_chart(
    title: str,
    labels: Sequence[str],
    series: dict,
    unit: str = "work",
) -> str:
    """Render ``{strategy: [value per label]}`` as log-scaled bars.

    Missing points (None / inf) render as ``infeasible``.  Values are
    log-scaled because the interesting gaps span orders of magnitude.
    """
    finite = [
        value
        for values in series.values()
        for value in values
        if value is not None and math.isfinite(value) and value > 0
    ]
    if not finite:
        return f"{title}\n(no data)"
    low = min(finite)
    high = max(finite)
    span = math.log10(high / low) if high > low else 1.0

    def bar(value) -> str:
        if value is None or not math.isfinite(value):
            return "infeasible"
        if value <= 0:
            return ""
        filled = 1 + round(
            (BAR_WIDTH - 1) * (math.log10(value / low) / span)
        ) if span else BAR_WIDTH
        return "#" * max(1, min(BAR_WIDTH, filled))

    name_width = max(len(name) for name in series)
    lines = [title, f"(log scale, {unit}; min={low:g}, max={high:g})"]
    for index, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[index] if index < len(values) else None
            rendered = bar(value)
            suffix = (
                f" {value:,.0f}"
                if value is not None and math.isfinite(value)
                else ""
            )
            lines.append(f"  {name:<{name_width}} |{rendered}{suffix}")
    return "\n".join(lines)


def chart_results(
    title: str,
    results: Sequence[ComparisonResult],
    strategies: Sequence[str],
    metric: str = "work",
) -> str:
    """Build an ascii chart straight from ComparisonResult sweeps."""
    from repro.bench.reporting import _point_label, series_summary

    labels = [_point_label(result) for result in results]
    series = {
        strategy: series_summary(results, strategy, metric)
        for strategy in strategies
    }
    return ascii_chart(title, labels, series, unit=metric)
