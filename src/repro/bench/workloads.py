"""Workload builders for the paper's experiments (Figures 2–5, Table 1).

Each builder returns ``(catalog, query)`` for one parameter point of one
experiment.  Sizes default to laptop scale but preserve the paper's
outer/inner *ratios* trajectory; the common scale knob is the
``REPRO_BENCH_SCALE`` environment variable (1.0 = the defaults below,
larger values grow every table proportionally).

Paper parameter points:

* Figure 2 — EXISTS: outer 1000 rows, inner 300k/600k/900k/1.2M.
* Figure 3 — aggregate comparison: outer 500→2000 with inner 300k→1.2M.
* Figure 4 — quantified ALL with a ``<>`` key correlation: both tables
  40k/80k/120k/160k.
* Figure 5 — two tree-nested EXISTS over 300k→1.2M with a 1000-row outer
  block, with and without indexes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.algebra.expressions import col, lit
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
)
from repro.algebra.aggregates import agg
from repro.algebra.operators import ScanTable
from repro.data.rng import make_rng
from repro.data.tpcr import (
    generate_customer,
    generate_orders,
    generate_part,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.types import DataType


def bench_scale() -> float:
    """The global size multiplier (env ``REPRO_BENCH_SCALE``, default 1)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def _scaled(value: int) -> int:
    return max(1, int(value * bench_scale()))


@dataclass
class Workload:
    """One experiment point: a catalog, the nested query, and labels."""

    name: str
    catalog: Catalog
    query: NestedSelect
    params: dict


# -- Figure 2: EXISTS subquery ---------------------------------------------------

FIG2_INNER_SIZES = (6000, 12000, 18000, 24000)
FIG2_OUTER_SIZE = 200


def build_fig2(inner_size: int, outer_size: int | None = None,
               indexes: bool = True, seed: int = 11) -> Workload:
    """``σ[∃ orders(custkey = c.custkey ∧ totalprice > P)] customer``."""
    outer_size = outer_size or _scaled(FIG2_OUTER_SIZE)
    inner_size = _scaled(inner_size)
    catalog = Catalog()
    catalog.create_table("customer", generate_customer(outer_size, seed))
    catalog.create_table(
        "orders", generate_orders(inner_size, outer_size * 2, seed)
    )
    if indexes:
        catalog.create_hash_index("orders", ["custkey"])
        catalog.create_hash_index("customer", ["custkey"])
    subquery = Subquery(
        ScanTable("orders", "o"),
        (col("o.custkey") == col("c.custkey"))
        & (col("o.totalprice") > lit(250000.0)),
    )
    query = NestedSelect(ScanTable("customer", "c"), Exists(subquery))
    return Workload(
        "fig2_exists", catalog, query,
        {"outer": outer_size, "inner": inner_size, "indexes": indexes},
    )


# -- Figure 3: comparison predicate over an aggregate -----------------------------------

FIG3_POINTS = ((50, 3000), (100, 6000), (150, 9000), (200, 12000))


def build_fig3(outer_size: int, inner_size: int, indexes: bool = True,
               seed: int = 12) -> Workload:
    """``σ[c.acctbal * 50 > (SELECT avg(totalprice) ... correlated)] customer``."""
    outer_size = _scaled(outer_size)
    inner_size = _scaled(inner_size)
    catalog = Catalog()
    catalog.create_table("customer", generate_customer(outer_size, seed))
    catalog.create_table(
        "orders", generate_orders(inner_size, outer_size, seed)
    )
    if indexes:
        catalog.create_hash_index("orders", ["custkey"])
    subquery = Subquery(
        ScanTable("orders", "o"),
        col("o.custkey") == col("c.custkey"),
        aggregate=agg("avg", col("o.totalprice"), "avgprice"),
    )
    query = NestedSelect(
        ScanTable("customer", "c"),
        ScalarComparison(">", col("c.acctbal") * lit(50.0), subquery),
    )
    return Workload(
        "fig3_aggcomp", catalog, query,
        {"outer": outer_size, "inner": inner_size, "indexes": indexes},
    )


# -- Figure 4: quantified ALL with a <> key correlation ----------------------------------

FIG4_SIZES = (400, 800, 1200, 1600)


def build_fig4(size: int, seed: int = 13) -> Workload:
    """``σ[p.retailprice >=all π[q.retailprice]σ[q.partkey <> p.partkey] part2] part1``.

    Both tables have ``size`` rows; the ``<>`` correlation defeats hash
    partitioning, which is the whole point of the experiment.
    """
    size = _scaled(size)
    catalog = Catalog()
    catalog.create_table("part1", generate_part(size, seed))
    part2 = generate_part(size, seed + 1)
    part2.name = "part2"
    catalog.create_table("part2", part2)
    subquery = Subquery(
        ScanTable("part2", "q"),
        col("q.partkey") != col("p.partkey"),
        item=col("q.retailprice"),
    )
    query = NestedSelect(
        ScanTable("part1", "p"),
        QuantifiedComparison(">=", "all", col("p.retailprice"), subquery),
    )
    return Workload("fig4_all", catalog, query, {"size": size})


# -- Figure 5: tree-nested EXISTS predicates ------------------------------------------------

FIG5_INNER_SIZES = (6000, 12000, 18000, 24000)
FIG5_OUTER_SIZE = 200


def build_fig5(inner_size: int, outer_size: int | None = None,
               indexes: bool = True, seed: int = 14) -> Workload:
    """Two EXISTS subqueries over the same large table, disjoint filters.

    ``σ[∃ o1(custkey=c ∧ price>HI) ∧ ∃ o2(custkey=c ∧ priority='1-URGENT')]``
    — the shape where conventional unnesting needs two large joins that
    cannot be combined, while coalescing folds both subqueries into one
    GMDJ scan.
    """
    outer_size = outer_size or _scaled(FIG5_OUTER_SIZE)
    inner_size = _scaled(inner_size)
    catalog = Catalog()
    catalog.create_table("customer", generate_customer(outer_size, seed))
    catalog.create_table(
        "orders", generate_orders(inner_size, outer_size * 2, seed)
    )
    if indexes:
        catalog.create_hash_index("orders", ["custkey"])
        catalog.create_hash_index("customer", ["custkey"])
    first = Subquery(
        ScanTable("orders", "o1"),
        (col("o1.custkey") == col("c.custkey"))
        & (col("o1.totalprice") > lit(300000.0)),
    )
    second = Subquery(
        ScanTable("orders", "o2"),
        (col("o2.custkey") == col("c.custkey"))
        & (col("o2.orderpriority") == lit("1-URGENT")),
    )
    query = NestedSelect(
        ScanTable("customer", "c"), Exists(first) & Exists(second)
    )
    return Workload(
        "fig5_tree_exists", catalog, query,
        {"outer": outer_size, "inner": inner_size, "indexes": indexes},
    )


# -- Table 1: one workload per rewrite rule ------------------------------------------------

def build_table1_catalog(outer: int = 120, inner: int = 2400,
                         seed: int = 15, nulls: bool = True) -> Catalog:
    """A generic two-table catalog exercising every Table 1 rule.

    ``B(K, X, RK)`` and ``R(RID, K, Y)``: ``K`` is the many-to-one
    correlation key, ``RID`` is unique in R and ``B.RK`` references it (so
    the plain scalar-comparison rule sees at most one inner row, the form
    Table 1 row 1 is defined for).  Roughly 8% NULLs in X and Y when
    ``nulls`` is set, so the three-valued-logic corners are live.
    """
    rng = make_rng(seed, "table1")
    outer = _scaled(outer)
    inner = _scaled(inner)

    def maybe_null(value):
        if nulls and rng.random() < 0.08:
            return None
        return value

    catalog = Catalog()
    catalog.create_table("B", Relation.from_columns(
        [("K", DataType.INTEGER), ("X", DataType.INTEGER),
         ("RK", DataType.INTEGER)],
        [(i, maybe_null(rng.randint(0, 50)), rng.randrange(inner))
         for i in range(outer)],
    ))
    catalog.create_table("R", Relation.from_columns(
        [("RID", DataType.INTEGER), ("K", DataType.INTEGER),
         ("Y", DataType.INTEGER)],
        [(rid, rng.randrange(outer), maybe_null(rng.randint(0, 50)))
         for rid in range(inner)],
    ))
    catalog.create_hash_index("R", ["K"])
    catalog.create_hash_index("R", ["RID"])
    return catalog


def table1_queries() -> dict[str, NestedSelect]:
    """One nested query per Table 1 row (over the build_table1_catalog)."""
    correlated = col("r.K") == col("b.K")

    def sub(item=None, aggregate=None, predicate=None):
        return Subquery(ScanTable("R", "r"), predicate or correlated,
                        item=item, aggregate=aggregate)

    scalar_unique = Subquery(
        # Correlate on R's unique key so the scalar block yields at most
        # one row per outer tuple (the form Table 1 row 1 assumes).
        ScanTable("R", "r"),
        col("r.RID") == col("b.RK"),
        item=col("r.Y"),
    )
    return {
        "comparison": NestedSelect(
            ScanTable("B", "b"),
            ScalarComparison("=", col("b.X"), scalar_unique),
        ),
        "agg_comparison": NestedSelect(
            ScanTable("B", "b"),
            ScalarComparison(
                ">", col("b.X"),
                sub(aggregate=agg("avg", col("r.Y"), "avgy")),
            ),
        ),
        "some": NestedSelect(
            ScanTable("B", "b"),
            QuantifiedComparison(">", "some", col("b.X"), sub(item=col("r.Y"))),
        ),
        "all": NestedSelect(
            ScanTable("B", "b"),
            QuantifiedComparison(">", "all", col("b.X"), sub(item=col("r.Y"))),
        ),
        "exists": NestedSelect(ScanTable("B", "b"), Exists(sub())),
        "not_exists": NestedSelect(
            ScanTable("B", "b"), Exists(sub(), negated=True)
        ),
    }


# -- Example 2.3 (coalescing ablation) -------------------------------------------------------

def build_example23(flows: int = 4000, sources: int = 60,
                    seed: int = 16) -> Workload:
    """The three-subquery SourceIP query of Example 2.3."""
    from repro.data.netflow import NetflowConfig, build_netflow_catalog
    from repro.algebra.operators import Project

    config = NetflowConfig(flows=_scaled(flows), users=sources, seed=seed)
    catalog = build_netflow_catalog(config)
    base = Project(ScanTable("Flow", "F0"), ["F0.SourceIP"], distinct=True)

    def sub(dest: str, alias: str) -> Subquery:
        return Subquery(
            ScanTable("Flow", alias),
            (col(f"{alias}.SourceIP") == col("F0.SourceIP"))
            & (col(f"{alias}.DestIP") == lit(dest)),
        )

    predicate = (
        Exists(sub("167.167.167.0", "F1"), negated=True)
        & Exists(sub("168.168.168.0", "F2"))
        & Exists(sub("169.169.169.0", "F3"), negated=True)
    )
    query = NestedSelect(base, predicate)
    return Workload("example23", catalog, query, {"flows": config.flows})
