"""Paper-style series tables for the benchmark harness.

The figures in the paper plot query evaluation time against workload
size, one series per strategy.  :func:`print_series` reproduces that as a
fixed-width table with one row per parameter point and one column pair
(time, work) per strategy, so the *shape* — who wins, by what factor,
where the crossovers sit — is directly visible in the benchmark output.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import ComparisonResult


def print_series(
    title: str,
    results: Sequence[ComparisonResult],
    strategies: Sequence[str],
    x_label: str = "point",
    chart: bool = True,
) -> str:
    """Render (and return) the series table (plus an ASCII shape chart)
    for one experiment."""
    lines = [f"== {title} ==".center(40 + 24 * len(strategies))]
    header = f"{x_label:>24s}"
    for strategy in strategies:
        header += f" | {strategy:>21s}"
    lines.append(header)
    sub = " " * 24
    for _ in strategies:
        sub += f" | {'ms':>9s} {'work':>11s}"
    lines.append(sub)
    lines.append("-" * len(sub))
    for result in results:
        label = _point_label(result)
        row = f"{label:>24s}"
        for strategy in strategies:
            report = result.reports.get(strategy)
            if report is None:
                reason = "infeasible" if strategy in result.failures else "-"
                row += f" | {reason:>21s}"
            else:
                row += (
                    f" | {report.elapsed_seconds * 1000:9.1f} "
                    f"{report.total_work:11d}"
                )
        lines.append(row)
    text = "\n".join(lines)
    if chart and len(results) >= 1:
        from repro.bench.charts import chart_results

        text += "\n\n" + chart_results(
            f"shape: {title}", results, strategies, metric="work"
        )
    print(text)
    return text


def _point_label(result: ComparisonResult) -> str:
    params = result.workload.params
    parts = [f"{key}={value}" for key, value in params.items()
             if key != "indexes"]
    if params.get("indexes") is False:
        parts.append("noidx")
    return ",".join(parts)


def series_summary(
    results: Sequence[ComparisonResult], strategy: str, metric: str = "work"
) -> list[float]:
    """Extract one strategy's series (for shape assertions in tests)."""
    series = []
    for result in results:
        report = result.reports.get(strategy)
        if report is None:
            series.append(float("inf"))
        elif metric == "work":
            series.append(float(report.total_work))
        elif metric == "time":
            series.append(report.elapsed_seconds)
        elif metric == "pages":
            series.append(float(report.pages_read))
        else:
            series.append(float(report.counters.get(metric, 0)))
    return series
