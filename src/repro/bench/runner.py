"""Sweep execution: run one workload under several strategies and check
that they agree before trusting any timing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.workloads import Workload
from repro.engine.executor import profile
from repro.engine.reports import ExecutionReport
from repro.errors import ReproError
from repro.obs.metrics import get_registry


@dataclass
class ComparisonResult:
    """Reports for one workload point, keyed by strategy."""

    workload: Workload
    reports: dict[str, ExecutionReport] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)

    def work(self, strategy: str) -> int | None:
        report = self.reports.get(strategy)
        return report.total_work if report else None

    def elapsed_ms(self, strategy: str) -> float | None:
        report = self.reports.get(strategy)
        return report.elapsed_seconds * 1000 if report else None


def compare_strategies(
    workload: Workload,
    strategies: list[str],
    check_equivalence: bool = True,
) -> ComparisonResult:
    """Profile the workload under each strategy.

    Strategies that legitimately cannot handle a workload (e.g. join
    unnesting on a disjunctive predicate) are recorded under ``failures``
    rather than aborting the sweep — matching how the paper reports the
    join baseline as infeasible on Figure 4.

    When ``check_equivalence`` is set, all successful strategies must
    return the same bag of rows; a mismatch raises immediately because a
    wrong answer invalidates the whole comparison.
    """
    result = ComparisonResult(workload)
    registry = get_registry()
    reference = None
    reference_strategy = None
    for strategy in strategies:
        try:
            report = profile(workload.query, workload.catalog, strategy)
        except ReproError as exc:
            result.failures[strategy] = str(exc)
            registry.counter(f"bench.failures.{strategy}").inc()
            continue
        result.reports[strategy] = report
        registry.counter(f"bench.runs.{strategy}").inc()
        registry.histogram(f"bench.elapsed_ms.{strategy}").observe(
            report.elapsed_seconds * 1000
        )
        if check_equivalence:
            if reference is None:
                reference = report.result
                reference_strategy = strategy
            elif not reference.bag_equal(report.result):
                raise AssertionError(
                    f"strategy {strategy!r} disagrees with "
                    f"{reference_strategy!r} on workload {workload.name} "
                    f"{workload.params}: {len(report.result)} vs "
                    f"{len(reference)} rows"
                )
    return result
