"""Benchmark harness: workload builders, sweep runner, series reporting."""

from repro.bench.runner import ComparisonResult, compare_strategies
from repro.bench.reporting import print_series, series_summary
from repro.bench.workloads import (
    FIG2_INNER_SIZES,
    FIG3_POINTS,
    FIG4_SIZES,
    FIG5_INNER_SIZES,
    Workload,
    bench_scale,
    build_example23,
    build_fig2,
    build_fig3,
    build_fig4,
    build_fig5,
    build_table1_catalog,
    table1_queries,
)

__all__ = [
    "ComparisonResult",
    "FIG2_INNER_SIZES",
    "FIG3_POINTS",
    "FIG4_SIZES",
    "FIG5_INNER_SIZES",
    "Workload",
    "bench_scale",
    "build_example23",
    "build_fig2",
    "build_fig3",
    "build_fig4",
    "build_fig5",
    "build_table1_catalog",
    "compare_strategies",
    "print_series",
    "series_summary",
    "table1_queries",
]
