"""Command-line interface: run subquery SQL over CSV tables, or fuzz.

Usage::

    python -m repro --data warehouse_dir/ \\
        "SELECT c.custkey FROM customer c WHERE EXISTS \\
         (SELECT * FROM orders o WHERE o.custkey = c.custkey)" \\
        --strategy gmdj_optimized --profile

Parallel and memory-bounded GMDJ execution hang off the same flags:
``--workers N`` evaluates detail partitions on a worker pool
(``--partitions`` controls the fragment count), ``--chunk-budget``
switches to memory-bounded chunked evaluation, ``--chunk-size`` (or
``--mode gmdj_vectorized``) runs the columnar batch kernel,
``--backend numpy`` runs that kernel on whole-array numpy buffers, and
``--no-cache`` bypasses the database's plan/result cache.

Every ``*.csv`` file in ``--data`` (written by
:func:`repro.storage.save_csv`, i.e. with a typed ``name:type`` header)
becomes a table named after the file stem.  ``--index table.attr`` adds
hash indexes for the native/join strategies to use.

The ``explain`` subcommand renders plans, optionally executed::

    python -m repro explain "SELECT ..." --data warehouse_dir/
    python -m repro explain "SELECT ..." --data warehouse_dir/ --analyze
    python -m repro explain "SELECT ..." --data d/ --analyze --json

Plain ``explain`` prints the plan the strategy would run;
``--analyze`` executes it under operator tracing and annotates every
span with wall-clock and IOStats counter deltas, then checks the
paper's cost invariants over the finished trace (``--strict-invariants``
turns violations into a non-zero exit).  ``--json`` emits the full
trace as machine-readable JSON.

The ``lint`` subcommand statically verifies plans without executing::

    python -m repro lint "SELECT ..." --data warehouse_dir/
    python -m repro lint --corpus tests/corpus --json

It runs the static plan verifier (:mod:`repro.lint`) over the bound
query and its GMDJ translations, printing every diagnostic (scope/type
errors, 3VL NULL hazards, missed-rewrite advice) plus the structural
cost certificate.  Exit status is 0 when no error-severity diagnostic
fired, 1 otherwise.  With ``--corpus DIR`` it verifies every fuzz
corpus case in DIR instead of a single statement.

The ``serve`` subcommand boots the async multi-tenant query service
(:mod:`repro.serve`)::

    python -m repro serve --port 8125 --workers 4 --queue-depth 64 \\
        --data warehouse_dir/ --rollup subsume

It exposes ``/query``, ``/ddl``, ``/explain``, ``/metrics`` and
``/healthz`` as JSON-over-HTTP endpoints with bounded-queue admission
control (429 on overload), per-request deadlines (408), and graceful
drain on SIGINT/SIGTERM (503 while draining).  ``--data`` pre-loads a
CSV directory into the ``default`` tenant; other tenants are created on
first reference.

The ``convert`` subcommand rewrites a data directory between the CSV
interchange format and the binary ``.cols`` column format::

    python -m repro convert warehouse_dir/ warehouse_bin/ --to binary

Binary tables load memory-mapped without a parse step; ``--data``
accepts directories holding either format (binary shadows a same-named
CSV).

The ``fuzz`` subcommand runs the differential fuzzer instead::

    python -m repro fuzz --seed 42 --iterations 500
    python -m repro fuzz --corpus tests/corpus        # replay only

Failing cases are shrunk and written as JSON under ``--out`` (default
``fuzz_failures/``); promote them into ``tests/corpus/`` to pin the
regression.  ``--metrics PATH`` additionally writes the campaign's
metrics registry as JSON.  Exit status is 0 when every engine agreed
with the SQLite oracle on every case, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import STRATEGIES, Database, QueryOptions
from repro.errors import ReproError


def add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The strategy/mode/parallelism knobs shared by run and explain."""
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="auto",
        help="evaluation strategy (default: auto)",
    )
    parser.add_argument(
        "--mode",
        choices=["plain", "chunked", "partitioned", "gmdj_vectorized",
                 "vectorized"],
        default=None,
        help="GMDJ execution regime (default: inferred from the other "
             "knobs; e.g. --workers implies partitioned, --chunk-size "
             "implies gmdj_vectorized; also via REPRO_MODE)",
    )
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help="detail partitions for partitioned evaluation",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker pool size for partitioned evaluation "
             "(also via REPRO_WORKERS)",
    )
    parser.add_argument(
        "--chunk-budget", type=int, default=None, metavar="TUPLES",
        help="in-memory tuple budget for chunked evaluation",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="ROWS",
        help="detail rows per batch for vectorized evaluation "
             "(implies --mode gmdj_vectorized)",
    )
    parser.add_argument(
        "--backend", choices=("python", "numpy", "auto"), default=None,
        help="array-kernel backend for vectorized evaluation (implies "
             "--mode gmdj_vectorized; 'auto' picks numpy when installed; "
             "also via REPRO_BACKEND)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the plan/result cache for this run",
    )
    parser.add_argument(
        "--rollup", choices=("off", "exact", "subsume"), default=None,
        help="semantic rollup tier: answer GMDJ nodes from materialized "
             "rollups (exact signature match, or subsumption from a "
             "coarser stored rollup); also via REPRO_ROLLUP",
    )
    parser.add_argument(
        "--mqo", choices=("off", "fingerprint", "coalesce"), default=None,
        help="batch multi-query optimization level: share detail scans "
             "across compatible queries in a batch (default coalesce "
             "for batches; also via REPRO_MQO)",
    )


def query_options(args) -> QueryOptions:
    """Build the QueryOptions a parsed CLI invocation asks for."""
    return QueryOptions(
        strategy=args.strategy,
        mode=args.mode,
        partitions=args.partitions,
        workers=args.workers,
        chunk_budget=args.chunk_budget,
        chunk_size=args.chunk_size,
        backend=args.backend,
        use_cache=not args.no_cache,
        rollup=args.rollup,
        mqo=args.mqo,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMDJ-based subquery processing over CSV tables "
                    "(Akinde & Boehlen, ICDE 2003).",
    )
    parser.add_argument("sql", help="the SELECT statement to run")
    parser.add_argument(
        "--data", type=Path, default=None,
        help="directory of *.csv files and *.cols binary tables to load",
    )
    add_execution_arguments(parser)
    parser.add_argument(
        "--index", action="append", default=[], metavar="TABLE.ATTR",
        help="create a hash index before running (repeatable)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the plan instead of executing",
    )
    parser.add_argument(
        "--emit-sql", action="store_true",
        help="print the GMDJ plan reduced to standard SQL "
             "(conditional aggregation) instead of executing",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print timing and work counters after the result",
    )
    parser.add_argument(
        "--limit", type=int, default=50,
        help="max rows to print (default 50)",
    )
    return parser


def load_data_directory(db: Database, directory: Path) -> list[str]:
    """Load every table in ``directory``; returns table names.

    ``*.csv`` files load through the text reader; ``*.cols/`` binary
    column directories (see :mod:`repro.storage.binio`) load through the
    memory-mapped reader.  A binary table shadows a same-named CSV — the
    binary form is the faster, lossless one, and ``repro convert`` keeps
    the CSV around only as interchange.
    """
    from repro.storage.binio import binary_tables, table_stem

    names = []
    binary_names = set()
    for path in binary_tables(directory):
        name = table_stem(path)
        db.load_binary(name, path)
        binary_names.add(name)
        names.append(name)
    for path in sorted(directory.glob("*.csv")):
        if path.stem in binary_names:
            continue
        db.load_csv(path.stem, path)
        names.append(path.stem)
    return sorted(names)


def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro convert",
        description="Convert a data directory between the CSV interchange "
                    "format and the binary .cols column format "
                    "(NPY-per-column + JSON manifest, memory-mapped on "
                    "load).",
    )
    parser.add_argument(
        "source", type=Path,
        help="directory of tables to convert (*.csv and/or *.cols)",
    )
    parser.add_argument(
        "destination", type=Path,
        help="directory to write converted tables into (created if needed)",
    )
    parser.add_argument(
        "--to", choices=("binary", "csv"), default="binary",
        help="target format (default: binary)",
    )
    return parser


def convert_main(argv: list[str], out) -> int:
    from repro.storage import save_binary, save_csv

    args = build_convert_parser().parse_args(argv)
    if not args.source.is_dir():
        print(f"error: {args.source} is not a directory", file=sys.stderr)
        return 2
    db = Database()
    try:
        names = load_data_directory(db, args.source)
        if not names:
            print(f"error: no tables (*.csv or *.cols) in {args.source}",
                  file=sys.stderr)
            return 2
        args.destination.mkdir(parents=True, exist_ok=True)
        for name in names:
            relation = db.catalog.table(name)
            if args.to == "binary":
                written = save_binary(relation, args.destination / name)
            else:
                written = args.destination / f"{name}.csv"
                save_csv(relation, written)
            print(f"{name}: {len(relation)} rows -> {written}", file=out)
        print(f"converted {len(names)} table(s) to {args.to}", file=out)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential SQL fuzzing against a SQLite oracle.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; every case is derived from it (default 0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=100,
        help="number of (database, query) cases to generate (default 100)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=10,
        help="max rows per generated table (default 10)",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="DIR",
        help="replay the *.json cases in DIR instead of generating",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("fuzz_failures"), metavar="DIR",
        help="directory for shrunk counterexample JSON "
             "(default fuzz_failures/)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failing cases as generated, without minimizing",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-divergence progress output",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="PATH",
        help="write the campaign's metrics registry as JSON to PATH",
    )
    return parser


def fuzz_main(argv: list[str], out) -> int:
    from repro.fuzz.runner import (
        FuzzConfig,
        load_corpus,
        replay_case,
        run_fuzz,
        save_counterexample,
    )

    args = build_fuzz_parser().parse_args(argv)
    if args.corpus is not None:
        if not args.corpus.is_dir():
            print(f"error: {args.corpus} is not a directory", file=sys.stderr)
            return 2
        cases = load_corpus(args.corpus)
        if not cases:
            print(f"error: no *.json cases in {args.corpus}", file=sys.stderr)
            return 2
        failures = 0
        for path, data in cases:
            outcome = replay_case(data)
            if outcome.ok:
                print(f"{path.name}: OK ({outcome.engines_run} engines, "
                      f"{len(outcome.skipped)} skipped)", file=out)
            else:
                failures += 1
                print(f"{path.name}: DIVERGED", file=out)
                for divergence in outcome.divergences:
                    print(f"  {divergence.engine}: {divergence.kind} "
                          f"({divergence.detail})", file=out)
        print(f"replayed {len(cases)} case(s), {failures} failing", file=out)
        return 1 if failures else 0

    try:
        config = FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            max_rows=args.max_rows,
            shrink=not args.no_shrink,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    log = None if args.quiet else (lambda message: print(message, file=out))
    report = run_fuzz(config, log=log)
    for case in report.counterexamples:
        path = save_counterexample(args.out, case)
        print(f"counterexample written to {path}", file=out)
        print(f"  sql: {case.sql}", file=out)
        for divergence in case.outcome.divergences:
            print(f"  {divergence.engine}: {divergence.kind} "
                  f"({divergence.detail})", file=out)
    print(report.summary(), file=out)
    if args.metrics is not None:
        from repro.obs.metrics import get_registry

        path = get_registry().write(args.metrics)
        print(f"metrics written to {path}", file=out)
    return 0 if report.ok else 1


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically verify a query's plans without executing "
                    "them: schema/type inference, 3VL NULL-safety lints, "
                    "and the structural cost certificate.",
    )
    parser.add_argument(
        "sql", nargs="?", default=None,
        help="the SELECT statement to verify (omit with --corpus)",
    )
    parser.add_argument(
        "--data", type=Path, default=None,
        help="directory of *.csv files and *.cols binary tables to load",
    )
    parser.add_argument(
        "--index", action="append", default=[], metavar="TABLE.ATTR",
        help="create a hash index before linting (repeatable)",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="DIR",
        help="verify every fuzz corpus case (*.json) in DIR instead of "
             "a single statement",
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="auto",
        help="lint the plan this strategy would execute (default: auto)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit diagnostics and the cost certificate as JSON",
    )
    parser.add_argument(
        "--no-advice", action="store_true",
        help="suppress advisory (Axxx) diagnostics",
    )
    parser.add_argument(
        "--capabilities", action="store_true",
        help="also derive the capability certificate (nullability "
             "lattice, aggregate classes, theta-block facts) per plan",
    )
    parser.add_argument(
        "--concurrency", action="append", type=Path, default=[],
        metavar="PATH",
        help="run the source-level concurrency lint (RW-lock discipline, "
             "ContextVar isolation, shared-mutable capture) over this "
             "file or directory instead of a plan (repeatable)",
    )
    return parser


def _lint_one(db: Database, sql: str, strategy: str, advice: bool):
    """Lint the plan ``strategy`` would run.

    Returns ``(report, cost_certificate, capability_certificate)``.
    """
    from repro.lint import certify_capabilities, certify_plan, lint_plan
    from repro.unnesting import subquery_to_gmdj

    query = db.sql(sql)
    plan = query
    resolved = QueryOptions(strategy=strategy).canonical().strategy
    if resolved in ("auto", "gmdj_optimized", "cost_based"):
        plan = subquery_to_gmdj(query, db.catalog, optimize=True)
    elif resolved in ("gmdj", "gmdj_coalesce", "gmdj_completion"):
        plan = subquery_to_gmdj(query, db.catalog)
    return (lint_plan(plan, db.catalog, advice=advice),
            certify_plan(plan), certify_capabilities(plan, db.catalog))


def _lint_concurrency(paths, as_json: bool, out) -> int:
    """Run the source-level concurrency lint over files/directories."""
    from repro.lint import lint_concurrency_paths

    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    report = lint_concurrency_paths(paths)
    if as_json:
        import json

        print(json.dumps(report.to_json(), indent=2), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.ok else 1


def _corpus_capability(database: Database, sql: str):
    """The capability certificate of a corpus case's optimized plan."""
    from repro.errors import TranslationError
    from repro.lint import certify_capabilities
    from repro.unnesting import subquery_to_gmdj

    query = database.sql(sql)
    try:
        plan = subquery_to_gmdj(query, database.catalog, optimize=True)
    except TranslationError:
        plan = query
    return certify_capabilities(plan, database.catalog)


def _lint_corpus(args, out) -> int:
    """Verify every corpus case; exit 1 on any error-severity finding."""
    import json

    from repro.fuzz.datagen import DatabaseSpec
    from repro.fuzz.oracle import lint_findings
    from repro.fuzz.runner import load_corpus

    cases = load_corpus(args.corpus)
    if not cases:
        print(f"error: no *.json cases in {args.corpus}", file=sys.stderr)
        return 2
    failures = 0
    results = []
    for path, data in cases:
        dbspec = DatabaseSpec.from_json(data["tables"])
        database = Database()
        for name, table_spec in dbspec.tables.items():
            database.create_table(
                name, list(table_spec.columns), table_spec.rows
            )
        findings = lint_findings(database, data["sql"])
        capability = (
            _corpus_capability(database, data["sql"])
            if args.capabilities else None
        )
        if findings:
            failures += 1
        if args.json:
            entry = {
                "case": path.name,
                "ok": not findings,
                "diagnostics": [
                    dict(plan=label, **diagnostic.to_json())
                    for label, diagnostic in findings
                ],
            }
            if capability is not None:
                entry["capabilities"] = capability.to_json()
            results.append(entry)
        elif findings:
            print(f"{path.name}: {len(findings)} error(s)", file=out)
            for label, diagnostic in findings:
                print(f"  {label}: {diagnostic.render()}", file=out)
        else:
            suffix = (f" — {capability.summary()}"
                      if capability is not None else "")
            print(f"{path.name}: OK{suffix}", file=out)
    if args.json:
        print(json.dumps({
            "ok": failures == 0,
            "cases": len(cases),
            "failing": failures,
            "results": results,
        }, indent=2), file=out)
    else:
        print(f"linted {len(cases)} case(s), {failures} failing", file=out)
    return 1 if failures else 0


def lint_main(argv: list[str], out) -> int:
    args = build_lint_parser().parse_args(argv)
    if args.concurrency:
        if args.sql is not None or args.corpus is not None:
            print("error: --concurrency lints source files; it does not "
                  "combine with a SQL statement or --corpus",
                  file=sys.stderr)
            return 2
        return _lint_concurrency(args.concurrency, args.json, out)
    if (args.sql is None) == (args.corpus is None):
        print("error: provide either a SQL statement, --corpus DIR, or "
              "--concurrency PATH", file=sys.stderr)
        return 2
    try:
        if args.corpus is not None:
            if not args.corpus.is_dir():
                print(f"error: {args.corpus} is not a directory",
                      file=sys.stderr)
                return 2
            return _lint_corpus(args, out)
        db = Database()
        status = _load_and_index(db, args)
        if status:
            return status
        report, certificate, capabilities = _lint_one(
            db, args.sql, args.strategy, advice=not args.no_advice
        )
        if args.json:
            import json

            payload = {
                "lint": report.to_json(),
                "certificate": certificate.to_json(),
            }
            if args.capabilities:
                payload["capabilities"] = capabilities.to_json()
            print(json.dumps(payload, indent=2), file=out)
        else:
            print(report.render(), file=out)
            print(certificate.summary(), file=out)
            if args.capabilities:
                print(capabilities.summary(), file=out)
        return 0 if report.ok else 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Async multi-tenant query service: /query, /ddl, "
                    "/explain, /metrics, /healthz as JSON over HTTP with "
                    "bounded-queue admission control and per-request "
                    "deadlines.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="TCP port (default 8125; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="concurrent request executions (default 4)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="admitted requests allowed to wait beyond the executing "
             "ones; excess is shed with 429 (default 64)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=30_000.0, metavar="MS",
        help="default per-request deadline; requests may set their own "
             "via body deadline_ms (default 30000)",
    )
    parser.add_argument(
        "--max-tenants", type=int, default=16, metavar="N",
        help="cap on distinct tenants (default 16)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="how long graceful shutdown waits for in-flight requests "
             "(default 10)",
    )
    parser.add_argument(
        "--data", type=Path, default=None,
        help="directory of *.csv files pre-loaded into tenant 'default'",
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="auto",
        help="default evaluation strategy for served queries",
    )
    parser.add_argument(
        "--rollup", choices=("off", "exact", "subsume"), default=None,
        help="default rollup serving tier for served queries",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=0.0, metavar="MS",
        help="when > 0, hold /query requests up to this long and flush "
             "same-tenant same-options arrivals together through the "
             "MQO batch path (default 0: disabled)",
    )
    return parser


def serve_main(argv: list[str], out) -> int:
    from repro.serve import DEFAULT_PORT, ServeConfig, run_server

    args = build_serve_parser().parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            deadline_ms=args.deadline_ms,
            max_tenants=args.max_tenants,
            drain_grace_s=args.drain_grace,
            batch_window_ms=args.batch_window_ms,
            options=QueryOptions(strategy=args.strategy, rollup=args.rollup),
        )
        if args.data is not None and not args.data.is_dir():
            print(f"error: {args.data} is not a directory", file=sys.stderr)
            return 2
        return run_server(config, data_dir=args.data)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Render a query plan, optionally executing it under "
                    "operator tracing (EXPLAIN ANALYZE).",
    )
    parser.add_argument("sql", help="the SELECT statement to explain")
    parser.add_argument(
        "--data", type=Path, default=None,
        help="directory of *.csv files and *.cols binary tables to load",
    )
    add_execution_arguments(parser)
    parser.add_argument(
        "--index", action="append", default=[], metavar="TABLE.ATTR",
        help="create a hash index before running (repeatable)",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the query under tracing and annotate the plan "
             "with measured per-operator counters and times",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report's JSON payload instead of text (static "
             "plan/lint/certificate; with --analyze also the trace)",
    )
    parser.add_argument(
        "--strict-invariants", action="store_true",
        help="with --analyze: exit non-zero when a trace violates one "
             "of the paper's cost invariants",
    )
    return parser


def explain_main(argv: list[str], out) -> int:
    args = build_explain_parser().parse_args(argv)
    db = Database()
    try:
        status = _load_and_index(db, args)
        if status:
            return status
        options = query_options(args)
        query = db.sql(args.sql)
        from repro.errors import InvariantViolation
        from repro.obs.explain import explain_report

        try:
            # One Explain report serves both renderings; with --analyze
            # the query executes exactly once either way.
            report = explain_report(
                db, query, options, analyze=args.analyze,
                strict=args.strict_invariants,
            )
            if args.json:
                import json

                print(json.dumps(report.json(), indent=2), file=out)
            else:
                print(report.text(), file=out)
        except InvariantViolation as violation:
            print(f"invariant violation: {violation}", file=sys.stderr)
            return 1
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _load_and_index(db: Database, args) -> int:
    """Shared --data/--index handling; returns non-zero on usage errors."""
    if args.data is not None:
        if not args.data.is_dir():
            print(f"error: {args.data} is not a directory", file=sys.stderr)
            return 2
        tables = load_data_directory(db, args.data)
        if not tables:
            print(f"error: no *.csv files in {args.data}", file=sys.stderr)
            return 2
    for spec in args.index:
        table, _, attribute = spec.partition(".")
        if not attribute:
            print(f"error: --index wants TABLE.ATTR, got {spec!r}",
                  file=sys.stderr)
            return 2
        db.create_index(table, attribute)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:], out)
    if argv and argv[0] == "explain":
        return explain_main(argv[1:], out)
    if argv and argv[0] == "lint":
        return lint_main(argv[1:], out)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], out)
    if argv and argv[0] == "convert":
        return convert_main(argv[1:], out)
    args = build_parser().parse_args(argv)
    db = Database()
    try:
        status = _load_and_index(db, args)
        if status:
            return status
        options = query_options(args)
        if args.explain:
            print(db.explain(db.sql(args.sql), options), file=out)
            return 0
        if args.emit_sql:
            from repro.gmdj.to_sql import plan_to_sql
            from repro.unnesting import subquery_to_gmdj

            plan = subquery_to_gmdj(db.sql(args.sql), db.catalog,
                                    optimize=True)
            print(plan_to_sql(plan, db.catalog), file=out)
            return 0
        if args.profile:
            report = db.profile_sql(args.sql, options)
            print(report.result.pretty(limit=args.limit), file=out)
            print(file=out)
            print(report.summary(), file=out)
        else:
            result = db.execute_sql(args.sql, options)
            print(result.pretty(limit=args.limit), file=out)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
