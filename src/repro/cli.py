"""Command-line interface: run subquery SQL over CSV tables.

Usage::

    python -m repro --data warehouse_dir/ \\
        "SELECT c.custkey FROM customer c WHERE EXISTS \\
         (SELECT * FROM orders o WHERE o.custkey = c.custkey)" \\
        --strategy gmdj_optimized --profile

Every ``*.csv`` file in ``--data`` (written by
:func:`repro.storage.save_csv`, i.e. with a typed ``name:type`` header)
becomes a table named after the file stem.  ``--index table.attr`` adds
hash indexes for the native/join strategies to use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import STRATEGIES, Database
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMDJ-based subquery processing over CSV tables "
                    "(Akinde & Boehlen, ICDE 2003).",
    )
    parser.add_argument("sql", help="the SELECT statement to run")
    parser.add_argument(
        "--data", type=Path, default=None,
        help="directory of *.csv files to load as tables",
    )
    parser.add_argument(
        "--strategy", choices=STRATEGIES, default="auto",
        help="evaluation strategy (default: auto)",
    )
    parser.add_argument(
        "--index", action="append", default=[], metavar="TABLE.ATTR",
        help="create a hash index before running (repeatable)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the plan instead of executing",
    )
    parser.add_argument(
        "--emit-sql", action="store_true",
        help="print the GMDJ plan reduced to standard SQL "
             "(conditional aggregation) instead of executing",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print timing and work counters after the result",
    )
    parser.add_argument(
        "--limit", type=int, default=50,
        help="max rows to print (default 50)",
    )
    return parser


def load_data_directory(db: Database, directory: Path) -> list[str]:
    """Load every CSV in ``directory`` as a table; returns table names."""
    names = []
    for path in sorted(directory.glob("*.csv")):
        db.load_csv(path.stem, path)
        names.append(path.stem)
    return names


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    db = Database()
    try:
        if args.data is not None:
            if not args.data.is_dir():
                print(f"error: {args.data} is not a directory",
                      file=sys.stderr)
                return 2
            tables = load_data_directory(db, args.data)
            if not tables:
                print(f"error: no *.csv files in {args.data}",
                      file=sys.stderr)
                return 2
        for spec in args.index:
            table, _, attribute = spec.partition(".")
            if not attribute:
                print(f"error: --index wants TABLE.ATTR, got {spec!r}",
                      file=sys.stderr)
                return 2
            db.create_index(table, attribute)
        if args.explain:
            print(db.explain(db.sql(args.sql), args.strategy), file=out)
            return 0
        if args.emit_sql:
            from repro.gmdj.to_sql import plan_to_sql
            from repro.unnesting import subquery_to_gmdj

            plan = subquery_to_gmdj(db.sql(args.sql), db.catalog,
                                    optimize=True)
            print(plan_to_sql(plan, db.catalog), file=out)
            return 0
        if args.profile:
            report = db.profile_sql(args.sql, args.strategy)
            print(report.result.pretty(limit=args.limit), file=out)
            print(file=out)
            print(report.summary(), file=out)
        else:
            result = db.execute_sql(args.sql, args.strategy)
            print(result.pretty(limit=args.limit), file=out)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
