"""Non-executing schema and type inference over algebra/GMDJ plans.

:class:`PlanTyper` walks a plan tree and re-derives every operator's
output schema *without evaluating anything*, mirroring the composition
rules the operators apply at run time (``Schema.concat``/``extend``,
projection item fields, aggregate output fields).  Where the runtime
would raise — an unresolvable reference, a string/number comparison, a
union arity mismatch — the typer records a
:class:`~repro.lint.diagnostics.PlanDiagnostic` instead and keeps going,
so one lint run reports every problem in the plan.

Scoping follows the engine's two regimes:

* **flat operators** bind expressions against their own input schema
  only (``Expression.bind``); a reference that escapes is an error;
* **nested predicates** (``NestedSelect`` / ``Subquery`` trees) resolve
  references through the stack of enclosing scopes, innermost first,
  exactly like :func:`repro.algebra.nested.substitute_free` does with
  its environment.

The typer also collects the structural facts the rule modules need
(GMDJ block scopes, quantified-comparison sites) and invokes the checks
in :mod:`repro.lint.rules` / :mod:`repro.lint.advice` at the matching
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.apply_op import Apply
from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
)
from repro.algebra.nested import (
    Exists,
    NestedSelect,
    QuantifiedComparison,
    ScalarComparison,
    Subquery,
    SubqueryPredicate,
)
from repro.algebra.operators import (
    Difference,
    Distinct,
    GroupBy,
    Intersect,
    Join,
    Limit,
    Operator,
    OrderBy,
    Project,
    ProjectItem,
    Rename,
    ScanTable,
    Select,
    TableValue,
    Union,
)
from repro.errors import (
    AmbiguousAttributeError,
    CatalogError,
    ExpressionError,
    ReproError,
    SchemaError,
    TypeCheckError,
    UnknownAttributeError,
)
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ
from repro.lint.diagnostics import LintReport
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, Schema
from repro.storage.types import DataType


@dataclass(frozen=True)
class Frame:
    """One visible scope: its schema plus the operator that produced it.

    ``origin`` is kept so NULL-safety rules can trace a resolved column
    back to stored data (see :meth:`PlanTyper.column_possibly_null`).
    """

    schema: Schema
    origin: Operator | None = None


#: Operators whose output preserves their input's column order — safe to
#: unwrap when tracing a column back to a stored table.
_ORDER_PRESERVING = (Select, Distinct, OrderBy, Limit, Rename, NestedSelect)


class _ScopedResolver:
    """Reference resolution through a scope stack, innermost first.

    Mirrors the runtime environment semantics of
    :func:`~repro.algebra.nested.env_with_row`: a bare name that is
    ambiguous in an enclosing scope poisons the lookup rather than
    falling through to a further-out scope.
    """

    def __init__(
        self,
        report: LintReport,
        frames: list[Frame],
        path: str,
        unknown_code: str = "L001",
        scope_note: str = "",
    ) -> None:
        self.report = report
        self.frames = frames
        self.path = path
        self.unknown_code = unknown_code
        self.scope_note = scope_note

    def resolve(self, reference: str) -> tuple[Frame, Field] | None:
        local_ambiguous = False
        for depth, frame in enumerate(self.frames):
            try:
                field = frame.schema.field_of(reference)
            except AmbiguousAttributeError:
                if depth == 0:
                    # The runtime skips an ambiguous *local* match and
                    # consults the environment, so keep looking outward.
                    local_ambiguous = True
                    continue
                self.report.add(
                    "L002",
                    f"reference {reference!r} is ambiguous in an "
                    f"enclosing scope",
                    self.path,
                    hint="qualify the reference with its relation alias",
                )
                return None
            except UnknownAttributeError:
                continue
            return frame, field
        if local_ambiguous:
            self.report.add(
                "L002",
                f"ambiguous reference {reference!r}",
                self.path,
                hint="qualify the reference with its relation alias",
            )
        else:
            visible = [
                name for frame in self.frames for name in frame.schema.names
            ]
            note = f" {self.scope_note}" if self.scope_note else ""
            self.report.add(
                self.unknown_code,
                f"unresolved reference {reference!r}{note}; "
                f"visible attributes: {visible}",
                self.path,
            )
        return None

    def resolve_type(self, reference: str) -> DataType | None:
        resolved = self.resolve(reference)
        return resolved[1].dtype if resolved is not None else None


class PlanTyper:
    """One lint run's inference state over one plan tree."""

    def __init__(self, catalog: Catalog, report: LintReport,
                 advice: bool = True) -> None:
        self.catalog = catalog
        self.report = report
        self.advice = advice

    # -- operator walk ------------------------------------------------------

    def infer(self, node: Operator, path: str = "") -> Schema | None:
        """Schema of ``node``, or None when an error makes it unknowable."""
        name = type(node).__name__
        path = f"{path}/{name}" if path else name
        method = getattr(self, f"_infer_{name}", None)
        if method is not None:
            return method(node, path)
        return self._infer_generic(node, path)

    def _infer_generic(self, node: Operator, path: str) -> Schema | None:
        """Unknown node type: trust its own schema method, guarded."""
        for child in node.children():
            self.infer(child, path)
        try:
            return node.schema(self.catalog)
        except ReproError as error:
            self.report.add(
                "L001",
                f"cannot derive a schema for {type(node).__name__}: {error}",
                path,
            )
            return None

    def _infer_ScanTable(self, node: ScanTable, path: str) -> Schema | None:
        try:
            relation = self.catalog.table(node.table_name)
        except CatalogError:
            self.report.add(
                "L008",
                f"table {node.table_name!r} does not exist; catalog has "
                f"{self.catalog.table_names()}",
                path,
            )
            return None
        return relation.schema.rename(node.alias or node.table_name)

    def _infer_TableValue(self, node: TableValue, path: str) -> Schema | None:
        schema = node.relation.schema
        return schema.rename(node.alias) if node.alias is not None else schema

    def _infer_Select(self, node: Select, path: str) -> Schema | None:
        schema = self.infer(node.child, path)
        if schema is not None:
            self.check_predicate(
                node.predicate, [Frame(schema, node.child)],
                f"{path}:predicate",
            )
        return schema

    def _infer_Project(self, node: Project, path: str) -> Schema | None:
        child_schema = self.infer(node.child, path)
        if child_schema is None:
            return None
        fields = []
        frames = [Frame(child_schema, node.child)]
        for position, raw in enumerate(node.items):
            item_path = f"{path}:items[{position}]"
            try:
                item = ProjectItem.of(raw)
            except ExpressionError as error:
                self.report.add("L010", str(error), item_path)
                continue
            self.check_expression(item.expression, frames, item_path)
            try:
                fields.append(item.output_field(child_schema))
            except ReproError:
                fields.append(Field(item.name, DataType.FLOAT))
        return self._build_schema(fields, path)

    def _infer_Rename(self, node: Rename, path: str) -> Schema | None:
        schema = self.infer(node.child, path)
        return schema.rename(node.qualifier) if schema is not None else None

    def _infer_Distinct(self, node: Distinct, path: str) -> Schema | None:
        return self.infer(node.child, path)

    def _infer_Limit(self, node: Limit, path: str) -> Schema | None:
        return self.infer(node.child, path)

    def _infer_OrderBy(self, node: OrderBy, path: str) -> Schema | None:
        schema = self.infer(node.child, path)
        if schema is None:
            return None
        resolver = _ScopedResolver(
            self.report, [Frame(schema, node.child)], f"{path}:keys"
        )
        for reference, _descending in node.keys:
            resolver.resolve(reference)
        return schema

    def _infer_setop(
        self, node: Union | Difference | Intersect, path: str
    ) -> Schema | None:
        left = self.infer(node.left, path)
        right = self.infer(node.right, path)
        if left is None or right is None:
            return left
        if len(left) != len(right):
            self.report.add(
                "L004",
                f"{type(node).__name__.lower()} arity mismatch: "
                f"{len(left)} vs {len(right)} columns",
                path,
                hint="project both inputs to the same column list",
            )
        return left

    _infer_Union = _infer_setop
    _infer_Difference = _infer_setop
    _infer_Intersect = _infer_setop

    def _infer_Join(self, node: Join, path: str) -> Schema | None:
        left = self.infer(node.left, path)
        right = self.infer(node.right, path)
        if left is None or right is None:
            return None
        combined = self._concat_schemas(left, right, path)
        if combined is not None:
            self.check_predicate(
                node.condition, [Frame(combined, None)], f"{path}:condition"
            )
        if self.advice:
            from repro.lint.advice import check_join_pushdown

            check_join_pushdown(node, left, self, path)
        if node.kind in ("semi", "anti"):
            return left
        return combined

    def _infer_GroupBy(self, node: GroupBy, path: str) -> Schema | None:
        child_schema = self.infer(node.child, path)
        if child_schema is None:
            return None
        resolver = _ScopedResolver(
            self.report, [Frame(child_schema, node.child)], f"{path}:keys"
        )
        fields = []
        for key in node.keys:
            resolved = resolver.resolve(key)
            if resolved is not None:
                fields.append(resolved[1])
        for position, spec in enumerate(node.aggregates):
            agg_path = f"{path}:aggregates[{position}]"
            self.check_aggregate(
                spec, [Frame(child_schema, node.child)], agg_path
            )
            fields.append(self._aggregate_field(spec, child_schema))
        return self._build_schema(fields, path)

    def _infer_NestedSelect(self, node: NestedSelect, path: str) -> Schema | None:
        schema = self.infer(node.child, path)
        if schema is not None:
            self.check_nested_predicate(
                node.predicate, [Frame(schema, node.child)],
                f"{path}:predicate",
            )
        return schema

    def _infer_Apply(self, node: Apply, path: str) -> Schema | None:
        input_schema = self.infer(node.input, path)
        if input_schema is None:
            return None
        self._check_subquery_block(
            node.subquery, [Frame(input_schema, node.input)],
            f"{path}:subquery",
        )
        if node.mode in ("semi", "anti"):
            return input_schema
        try:
            return node.schema(self.catalog)
        except ReproError:
            return input_schema.extend(
                [Field(node.output_name, DataType.FLOAT)]
            )

    def _infer_GMDJ(self, node: GMDJ, path: str) -> Schema | None:
        base_schema = self.infer(node.base, f"{path}/base")
        detail_schema = self.infer(node.detail, f"{path}/detail")
        if base_schema is None or detail_schema is None:
            return None
        combined = self._concat_schemas(base_schema, detail_schema, path)
        output_fields: list[Field] = []
        for position, block in enumerate(node.blocks):
            block_path = f"{path}:blocks[{position}]"
            if combined is not None:
                self.check_predicate(
                    block.condition, [Frame(combined, None)],
                    f"{block_path}:condition",
                    unknown_code="L006",
                    scope_note="(theta must reference only base and "
                               "detail attributes — attr(θ) ⊆ B ∪ R)",
                )
            for spec in block.aggregates:
                self.check_aggregate(
                    spec, [Frame(detail_schema, node.detail)], block_path,
                    unknown_code="L006",
                    scope_note="(aggregate arguments range over the "
                               "detail relation only)",
                )
                output_fields.append(self._aggregate_field(spec, detail_schema))
        from repro.lint.rules import check_gmdj_blocks

        check_gmdj_blocks(node, base_schema, detail_schema, self.report, path)
        if self.advice:
            from repro.lint.advice import (
                check_missed_coalesce,
                check_theta_hashability,
            )

            check_missed_coalesce(node, self.report, path)
            check_theta_hashability(
                node, base_schema, detail_schema, self.report, path
            )
        try:
            return base_schema.extend(output_fields)
        except SchemaError as error:
            self.report.add("L005", str(error), path)
            return None

    def _infer_SelectGMDJ(self, node: SelectGMDJ, path: str) -> Schema | None:
        schema = self.infer(node.gmdj, path)
        if schema is not None:
            self.check_predicate(
                node.selection, [Frame(schema, node.gmdj)],
                f"{path}:selection",
            )
        return schema

    # -- schema assembly helpers --------------------------------------------

    def _build_schema(self, fields: list[Field], path: str) -> Schema | None:
        try:
            return Schema(fields)
        except SchemaError as error:
            self.report.add("L005", str(error), path)
            return None

    def _concat_schemas(
        self, left: Schema, right: Schema, path: str
    ) -> Schema | None:
        try:
            return left.concat(right)
        except SchemaError as error:
            self.report.add("L005", str(error), path)
            return None

    def _aggregate_field(self, spec: AggregateSpec, schema: Schema) -> Field:
        try:
            return spec.output_field(schema)
        except ReproError:
            return Field(spec.output_name, DataType.FLOAT)

    # -- expression checking ------------------------------------------------

    def check_predicate(
        self,
        expression: Expression,
        frames: list[Frame],
        path: str,
        unknown_code: str = "L001",
        scope_note: str = "",
    ) -> None:
        """Type-check a filter; it must be a predicate expression."""
        if not expression.is_predicate:
            self.report.add(
                "L010",
                f"{expression!r} is not a predicate; filters must produce "
                f"a truth value",
                path,
                hint="compare the expression against a value, or test "
                     "IS NULL",
            )
            return
        self.check_expression(
            expression, frames, path, unknown_code=unknown_code,
            scope_note=scope_note,
        )

    def check_expression(
        self,
        expression: Expression,
        frames: list[Frame],
        path: str,
        unknown_code: str = "L001",
        scope_note: str = "",
    ) -> DataType | None:
        """Infer an expression's type, reporting mismatches on the way."""
        resolver = _ScopedResolver(
            self.report, frames, path, unknown_code, scope_note
        )
        return self._type_of(expression, resolver, path)

    def _type_of(
        self, expression: Expression, resolver: _ScopedResolver, path: str
    ) -> DataType | None:
        if isinstance(expression, Column):
            return resolver.resolve_type(expression.reference)
        if isinstance(expression, Literal):
            if expression.value is None:
                return None
            try:
                return DataType.infer(expression.value)
            except TypeCheckError as error:
                self.report.add("L003", str(error), path)
                return None
        if isinstance(expression, TruthLiteral):
            return DataType.BOOLEAN
        if isinstance(expression, Arithmetic):
            left = self._type_of(expression.left, resolver, path)
            right = self._type_of(expression.right, resolver, path)
            for side in (left, right):
                if side is DataType.STRING:
                    self.report.add(
                        "L003",
                        f"arithmetic {expression.op!r} over a STRING "
                        f"operand in {expression!r}",
                        path,
                    )
                    return None
            if expression.op == "/":
                return DataType.FLOAT
            if left is DataType.INTEGER and right is DataType.INTEGER:
                return DataType.INTEGER
            return DataType.FLOAT
        if isinstance(expression, Comparison):
            self._check_comparison(expression, resolver, path)
            return DataType.BOOLEAN
        if isinstance(expression, (And, Or)):
            for side in (expression.left, expression.right):
                if not side.is_predicate:
                    self.report.add(
                        "L010",
                        f"{side!r} is not a predicate but is an operand "
                        f"of {type(expression).__name__.upper()}",
                        path,
                    )
                else:
                    self._type_of(side, resolver, path)
            return DataType.BOOLEAN
        if isinstance(expression, Not):
            if not expression.operand.is_predicate:
                self.report.add(
                    "L010",
                    f"{expression.operand!r} is not a predicate but is "
                    f"negated by NOT",
                    path,
                )
            else:
                self._type_of(expression.operand, resolver, path)
            return DataType.BOOLEAN
        if isinstance(expression, IsNull):
            self._type_of(expression.operand, resolver, path)
            return DataType.BOOLEAN
        if isinstance(expression, Coalesce):
            first = self._type_of(expression.first, resolver, path)
            second = self._type_of(expression.second, resolver, path)
            return first if first is not None else second
        if isinstance(expression, SubqueryPredicate):
            self.report.add(
                "L010",
                f"subquery predicate {expression!r} cannot be bound by a "
                f"flat operator",
                path,
                hint="wrap the selection in a NestedSelect or translate "
                     "the subquery away first",
            )
            return DataType.BOOLEAN
        # Unknown expression node: resolve its references, type unknown.
        for reference in expression.references():
            resolver.resolve(reference)
        return None

    def _check_comparison(
        self, expression: Comparison, resolver: _ScopedResolver, path: str
    ) -> None:
        left = self._type_of(expression.left, resolver, path)
        right = self._type_of(expression.right, resolver, path)
        self._check_comparable(left, right, expression, path)
        for side in (expression.left, expression.right):
            if isinstance(side, Literal) and side.value is None:
                self.report.add(
                    "W102",
                    f"comparison {expression!r} against a NULL literal is "
                    f"always UNKNOWN and never satisfies a filter",
                    path,
                    hint="use IS NULL / IS NOT NULL",
                )

    def _check_comparable(
        self,
        left: DataType | None,
        right: DataType | None,
        expression: Expression,
        path: str,
    ) -> None:
        """Mirror the runtime rule: string vs non-string cannot compare."""
        if left is None or right is None:
            return
        if (left is DataType.STRING) != (right is DataType.STRING):
            self.report.add(
                "L003",
                f"cannot compare {left.value} with {right.value} in "
                f"{expression!r} (string vs non-string)",
                path,
                hint="cast one side or fix the column reference",
            )

    # -- aggregates ----------------------------------------------------------

    def check_aggregate(
        self,
        spec: AggregateSpec,
        frames: list[Frame],
        path: str,
        unknown_code: str = "L001",
        scope_note: str = "",
    ) -> None:
        if spec.argument is None:
            return
        dtype = self.check_expression(
            spec.argument, frames, f"{path}:{spec.output_name}",
            unknown_code=unknown_code, scope_note=scope_note,
        )
        if spec.function in ("sum", "avg") and dtype is DataType.STRING:
            self.report.add(
                "L009",
                f"{spec.function}() over STRING argument "
                f"{spec.argument!r}",
                f"{path}:{spec.output_name}",
                hint="sum/avg need a numeric argument; min/max/count "
                     "accept strings",
            )

    # -- nested predicates ----------------------------------------------------

    def check_nested_predicate(
        self, predicate: Expression, frames: list[Frame], path: str
    ) -> None:
        """Check a predicate that may contain subquery leaves."""
        if isinstance(predicate, SubqueryPredicate):
            self._check_subquery_leaf(predicate, frames, path)
            return
        if isinstance(predicate, (And, Or)):
            kind = type(predicate).__name__.upper()
            for side in (predicate.left, predicate.right):
                if not side.is_predicate:
                    self.report.add(
                        "L010",
                        f"{side!r} is not a predicate but is an operand "
                        f"of {kind}",
                        path,
                    )
                else:
                    self.check_nested_predicate(side, frames, path)
            return
        if isinstance(predicate, Not):
            self.check_nested_predicate(predicate.operand, frames, path)
            return
        self.check_predicate(predicate, frames, path)

    def _check_subquery_leaf(
        self, leaf: SubqueryPredicate, frames: list[Frame], path: str
    ) -> None:
        inner_frames = self._check_subquery_block(
            leaf.subquery, frames, f"{path}/subquery"
        )
        if isinstance(leaf, Exists):
            return
        outer_type = self.check_expression(
            getattr(leaf, "outer"), frames, f"{path}:outer"
        )
        inner_type = self._subquery_value_type(leaf.subquery, inner_frames,
                                               path)
        self._check_comparable(outer_type, inner_type, leaf, path)
        if isinstance(leaf, QuantifiedComparison):
            from repro.lint.rules import check_quantifier_nullability

            check_quantifier_nullability(leaf, frames, inner_frames, self,
                                         path)
        if isinstance(leaf, ScalarComparison):
            from repro.lint.advice import check_extremum_quantifier

            if self.advice:
                check_extremum_quantifier(leaf, self.report, path)

    def _check_subquery_block(
        self, subquery: Subquery, frames: list[Frame], path: str
    ) -> list[Frame]:
        """Check one subquery block; returns the extended scope stack."""
        source_schema = self.infer(subquery.source, f"{path}/source")
        if source_schema is None:
            return frames
        inner_frames = [Frame(source_schema, subquery.source)] + frames
        self.check_nested_predicate(
            subquery.predicate, inner_frames, f"{path}:predicate"
        )
        if subquery.item is not None:
            self.check_expression(subquery.item, inner_frames,
                                  f"{path}:item")
        if subquery.aggregate is not None:
            self.check_aggregate(subquery.aggregate, inner_frames,
                                 f"{path}:aggregate")
        return inner_frames

    def _subquery_value_type(
        self, subquery: Subquery, inner_frames: list[Frame], path: str
    ) -> DataType | None:
        """The type of a subquery's produced value (item or aggregate)."""
        resolver = _ScopedResolver(self.report, inner_frames, path)
        if subquery.aggregate is not None:
            spec = subquery.aggregate
            if spec.function == "count":
                return DataType.INTEGER
            if spec.function == "avg":
                return DataType.FLOAT
            if isinstance(spec.argument, Column):
                resolved = resolver.resolve(spec.argument.reference)
                return resolved[1].dtype if resolved else None
            return None
        if subquery.item is not None and isinstance(subquery.item, Column):
            resolved = resolver.resolve(subquery.item.reference)
            return resolved[1].dtype if resolved else None
        return None

    # -- nullability oracle ----------------------------------------------------

    def column_possibly_null(
        self, expression: Expression, frames: list[Frame]
    ) -> bool:
        """True when ``expression`` is a column whose stored data holds NULLs.

        Conservative in the quiet direction: anything that cannot be
        traced back to catalog rows (computed columns, projections,
        joins) reports False, so the W101 warning only fires on columns
        *demonstrably* containing NULLs right now.
        """
        if not isinstance(expression, Column):
            return False
        for frame in frames:
            try:
                index = frame.schema.index_of(expression.reference)
            except (UnknownAttributeError, AmbiguousAttributeError):
                continue
            rows = self._stored_rows(frame.origin)
            if rows is None:
                return False
            return any(row[index] is None for row in rows)
        return False

    def _stored_rows(self, origin: Operator | None) -> list | None:
        """Rows of the stored table behind an order-preserving chain."""
        node = origin
        while isinstance(node, _ORDER_PRESERVING):
            node = node.child
        if isinstance(node, ScanTable):
            try:
                return self.catalog.table(node.table_name).rows
            except CatalogError:
                return None
        if isinstance(node, TableValue):
            return node.relation.rows
        return None
