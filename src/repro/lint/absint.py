"""Abstract interpretation over algebra + GMDJ plans: capability certificates.

Where :mod:`repro.lint.cost` certifies what a plan *costs* (output ≤ |B|,
one detail scan per GMDJ), this pass certifies what a plan's data and
operators *can do* — the side conditions the engine's optimizations rest
on, derived statically so the planner can gate on proof instead of
assumption:

* **Nullability** — a three-valued lattice per output column
  (:class:`Nullability`: NEVER / MAYBE / ALWAYS null), propagated from
  the stored data through every operator by transfer functions that
  mirror the runtime 3VL semantics in
  :mod:`repro.algebra.expressions` (NULL-strict arithmetic, ``x/0 →
  NULL``, COALESCE, outer-join padding, aggregate empty-input rules).
  Like :meth:`~repro.lint.infer.PlanTyper.column_possibly_null`, base
  facts are *data-dependent*: a column is NEVER-null because the rows it
  is computed from hold no NULLs right now, which is exactly the claim
  the runtime cross-check (:func:`repro.obs.invariants.
  check_capabilities`) verifies on every certified execution.

* **Aggregate classification** — every :class:`~repro.algebra.
  aggregates.AggregateSpec` is placed in Gray et al.'s Data Cube
  taxonomy (:func:`classify_aggregate`): *distributive* (count/sum/
  min/max — finalized partials merge by a named function), *algebraic*
  (avg — decomposes into the mergeable (sum, count) pair, the rewrite
  :func:`repro.gmdj.parallel._shadow_plan` performs), or *holistic*
  (DISTINCT-wrapped — unbounded auxiliary state, no merge function).
  Pool-parallel evaluation and MQO scan sharing require every aggregate
  to be non-holistic; both consult this classification.

* **θ-block facts** — each conjunct of every GMDJ θ condition is
  classified (:func:`classify_conjunct`) as a comparison over ordered
  columns (``range``, with the oriented monotone facts recorded),
  ``equality`` (including the translator's null-safe identity links),
  ``null-test``, ``constant``, or ``opaque``.  Rollup subsumption
  serving re-applies residual conjuncts to cached rows and therefore
  requires every residual to be in a non-opaque class.

The product is a :class:`CapabilityCertificate` — machine-checkable
(:meth:`~CapabilityCertificate.to_json`), cross-checked at runtime, and
consumed ambiently by the vectorized kernel through
:class:`capability_scope` / :func:`current_capabilities` (the columnar
encoder skips validity-mask work on detail columns certified
NEVER-null; observing a NULL there raises
:class:`~repro.errors.CertificateViolation`).
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Sequence

from repro.algebra.aggregates import AggregateSpec
from repro.algebra.apply_op import Apply
from repro.algebra.expressions import (
    And,
    Arithmetic,
    Coalesce,
    Column,
    Comparison,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    TruthLiteral,
    conjuncts_of,
)
from repro.algebra.nested import NestedSelect
from repro.algebra.operators import (
    Difference,
    Distinct,
    GroupBy,
    Intersect,
    Join,
    Limit,
    Operator,
    OrderBy,
    Project,
    Rename,
    ScanTable,
    Select,
    TableValue,
    Union,
)
from repro.errors import ReproError
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.lint.rules import match_null_safe_equal
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.types import DataType


class Nullability(Enum):
    """Per-column verdict of the 3VL null-propagation lattice."""

    NEVER = "never"
    MAYBE = "maybe"
    ALWAYS = "always"

    @staticmethod
    def join(left: "Nullability", right: "Nullability") -> "Nullability":
        """Least upper bound: agreement survives, disagreement is MAYBE."""
        return left if left is right else Nullability.MAYBE


NEVER = Nullability.NEVER
MAYBE = Nullability.MAYBE
ALWAYS = Nullability.ALWAYS


def stored_nullability(rows: Sequence[Sequence[Any]],
                       arity: int) -> list[Nullability]:
    """Data-dependent base facts: one verdict per column of stored rows.

    An empty relation is vacuously NEVER-null in every column; a column
    that is entirely NULL over non-empty rows is ALWAYS.
    """
    if not rows:
        return [NEVER] * arity
    verdicts: list[Nullability] = []
    total = len(rows)
    for position in range(arity):
        nulls = sum(1 for row in rows if row[position] is None)
        if nulls == 0:
            verdicts.append(NEVER)
        elif nulls == total:
            verdicts.append(ALWAYS)
        else:
            verdicts.append(MAYBE)
    return verdicts


#: Alias for the runtime cross-check direction: what the rows actually
#: show, computed with the same vocabulary the certificate speaks.
observed_nullability = stored_nullability


def _coalesce_transfer(first: Nullability,
                       second: Nullability) -> Nullability:
    """Transfer function of ``COALESCE(a, b)``: NULL iff both are NULL.

    Kept as a named module-level function so soundness tests can seed a
    deliberately broken lattice here and assert the differential /
    fuzz layer catches the unsound certificate.
    """
    if first is NEVER or second is NEVER:
        return NEVER
    if first is ALWAYS and second is ALWAYS:
        return ALWAYS
    return MAYBE


def expression_nullability(expression: Expression, schema: Schema,
                           env: Sequence[Nullability]) -> Nullability:
    """Abstract evaluation of one expression over a column environment.

    Mirrors the concrete ``_bind`` semantics of
    :mod:`repro.algebra.expressions`: arithmetic is NULL-strict except
    that division can produce NULL from non-NULL operands (``x/0``);
    predicates materialize UNKNOWN as NULL, so they are NEVER-null only
    when no operand can be NULL; ``IS NULL`` is never UNKNOWN.
    """
    if isinstance(expression, Column):
        try:
            return env[schema.index_of(expression.reference)]
        except ReproError:
            return MAYBE
    if isinstance(expression, Literal):
        return ALWAYS if expression.value is None else NEVER
    if isinstance(expression, TruthLiteral):
        return NEVER
    if isinstance(expression, IsNull):
        return NEVER
    if isinstance(expression, Coalesce):
        return _coalesce_transfer(
            expression_nullability(expression.first, schema, env),
            expression_nullability(expression.second, schema, env),
        )
    if isinstance(expression, Arithmetic):
        left = expression_nullability(expression.left, schema, env)
        right = expression_nullability(expression.right, schema, env)
        if left is ALWAYS or right is ALWAYS:
            return ALWAYS
        if expression.op == "/":
            # Division is the one non-strict case: x/0 yields NULL even
            # on NEVER-null operands, so NEVER cannot be certified.
            return MAYBE
        if left is NEVER and right is NEVER:
            return NEVER
        return MAYBE
    if isinstance(expression, Comparison):
        left = expression_nullability(expression.left, schema, env)
        right = expression_nullability(expression.right, schema, env)
        return NEVER if left is NEVER and right is NEVER else MAYBE
    if isinstance(expression, (And, Or)):
        left = expression_nullability(expression.left, schema, env)
        right = expression_nullability(expression.right, schema, env)
        # F AND U = F (and T OR U = T), so MAYBE operands stay MAYBE
        # rather than escalating; only all-NEVER certifies NEVER.
        return NEVER if left is NEVER and right is NEVER else MAYBE
    if isinstance(expression, Not):
        return expression_nullability(expression.operand, schema, env)
    return MAYBE


def aggregate_nullability(spec: AggregateSpec, keyed: bool, schema: Schema,
                          env: Sequence[Nullability]) -> Nullability:
    """Empty-input and NULL-skipping rules of one aggregate output.

    COUNT yields 0 on empty input, never NULL.  SUM/AVG/MIN/MAX yield
    NULL on empty or all-NULL input: over a *keyed* grouping every group
    is non-empty, so a NEVER-null argument certifies NEVER; over a
    scalar aggregate or a GMDJ θ-group (``keyed=False``) the input may
    be empty, so MAYBE is the ceiling unless the argument is ALWAYS
    null (then the output is too).
    """
    if spec.function == "count":
        return NEVER
    argument = (
        NEVER if spec.argument is None
        else expression_nullability(spec.argument, schema, env)
    )
    if argument is ALWAYS:
        return ALWAYS
    if keyed and argument is NEVER:
        return NEVER
    return MAYBE


# -- aggregate classification (Gray et al.'s Data Cube taxonomy) --------------


#: Merge function per distributive aggregate: how two finalized partial
#: values over a partitioned input combine into the total.
DISTRIBUTIVE_MERGES = {
    "count": "add",
    "sum": "add",
    "min": "min",
    "max": "max",
}

AGGREGATE_CLASSES = ("distributive", "algebraic", "holistic")


@dataclass(frozen=True)
class AggregateCapability:
    """One aggregate spec's place in the distributive/algebraic/holistic
    taxonomy, with the merge function named when partials merge."""

    spec: str
    function: str
    distinct: bool
    klass: str
    merge: str | None

    @property
    def decomposable(self) -> bool:
        """True when partition partials merge (pool / MQO eligible)."""
        return self.klass != "holistic"

    def to_json(self) -> dict:
        return {
            "spec": self.spec,
            "function": self.function,
            "distinct": self.distinct,
            "class": self.klass,
            "merge": self.merge,
        }


def classify_aggregate(spec: AggregateSpec) -> AggregateCapability:
    """Classify one aggregate spec (Gray et al., PAPERS.md).

    DISTINCT wraps any function into a holistic one: the auxiliary
    state is the value set itself, and finalized values do not merge
    (the partitioned evaluator forces a single scan for exactly this
    reason).  AVG is algebraic — :func:`repro.gmdj.parallel.
    _shadow_plan` decomposes it into the mergeable (sum, count) pair.
    """
    if spec.distinct:
        return AggregateCapability(
            spec=repr(spec), function=spec.function, distinct=True,
            klass="holistic", merge=None,
        )
    if spec.function == "avg":
        return AggregateCapability(
            spec=repr(spec), function=spec.function, distinct=False,
            klass="algebraic", merge="(sum, count) add pairwise",
        )
    return AggregateCapability(
        spec=repr(spec), function=spec.function, distinct=False,
        klass="distributive", merge=DISTRIBUTIVE_MERGES.get(spec.function),
    )


def decomposable_aggregates(gmdj: GMDJ) -> bool:
    """True when every aggregate of every θ-block merges across
    partitions — the side condition pool-parallel evaluation and MQO
    scan coalescing both require."""
    return all(
        classify_aggregate(spec).decomposable
        for block in gmdj.blocks for spec in block.aggregates
    )


# -- θ-block predicate facts ---------------------------------------------------


#: Conjunct classes, most to least structured.  ``opaque`` disqualifies
#: a residual from rollup subsumption serving.
CONJUNCT_CLASSES = (
    "equality", "inequality", "range", "null-test", "constant", "opaque",
)

_ORDERED_DTYPES = frozenset(
    {DataType.INTEGER, DataType.FLOAT, DataType.STRING}
)

_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _simple_operand(expression: Expression) -> bool:
    return isinstance(expression, (Column, Literal))


def classify_conjunct(
    conjunct: Expression,
) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Classify one θ conjunct; returns ``(class, monotone_facts)``.

    Monotone facts are oriented ``(column_reference, op)`` pairs for
    ordered comparisons: ``r.Y > 5`` records ``("r.Y", ">")`` — the
    predicate's truth is monotone in the column's order, the property
    range-pruning and rollup residual re-application rely on.
    """
    if isinstance(conjunct, TruthLiteral):
        return "constant", ()
    if isinstance(conjunct, IsNull) and _simple_operand(conjunct.operand):
        return "null-test", ()
    if match_null_safe_equal(conjunct) is not None:
        return "equality", ()
    if isinstance(conjunct, Comparison):
        if not (_simple_operand(conjunct.left)
                and _simple_operand(conjunct.right)):
            return "opaque", ()
        if conjunct.op == "=":
            return "equality", ()
        if conjunct.op == "<>":
            return "inequality", ()
        if conjunct.op in _MIRRORED:
            facts: list[tuple[str, str]] = []
            if isinstance(conjunct.left, Column):
                facts.append((conjunct.left.reference, conjunct.op))
            if isinstance(conjunct.right, Column):
                facts.append(
                    (conjunct.right.reference, _MIRRORED[conjunct.op])
                )
            return "range", tuple(facts)
    return "opaque", ()


@dataclass(frozen=True)
class ThetaFact:
    """Per-conjunct classification of one θ-block condition."""

    block: int
    classes: tuple[str, ...]
    monotone: tuple[tuple[str, str], ...]

    @property
    def opaque(self) -> bool:
        return "opaque" in self.classes

    def to_json(self) -> dict:
        return {
            "block": self.block,
            "classes": list(self.classes),
            "monotone": [list(fact) for fact in self.monotone],
        }


def classify_condition(block_index: int, condition: Expression,
                       detail_schema: Schema | None = None) -> ThetaFact:
    """Classify every conjunct of a θ condition into one ThetaFact.

    ``detail_schema`` restricts the recorded monotone facts to columns
    of the detail relation (ordered types only); without it every
    oriented fact over an ordered comparison is kept.
    """
    classes: list[str] = []
    monotone: list[tuple[str, str]] = []
    for conjunct in conjuncts_of(condition):
        klass, facts = classify_conjunct(conjunct)
        classes.append(klass)
        for reference, op in facts:
            if detail_schema is not None:
                try:
                    field = detail_schema.field_of(reference)
                except ReproError:
                    continue
                if field.dtype not in _ORDERED_DTYPES:
                    continue
            monotone.append((reference, op))
    return ThetaFact(
        block=block_index, classes=tuple(classes), monotone=tuple(monotone),
    )


# -- the certificate -----------------------------------------------------------


@dataclass(frozen=True)
class ColumnCapability:
    """One output column's certified nullability (positional)."""

    name: str
    nullability: Nullability

    def to_json(self) -> dict:
        return {"name": self.name, "nullability": self.nullability.value}


@dataclass(frozen=True)
class GMDJCapabilityEntry:
    """The capability facts of one GMDJ operator in the plan.

    ``relation`` names the stored detail table when the detail is a
    plain scan (the key the vectorized mask-skip gates on), else None.
    ``detail_never_null`` holds the bare names of detail columns whose
    stored data is certified NULL-free.
    """

    path: str
    relation: str | None
    detail_never_null: tuple[str, ...]
    aggregates: tuple[AggregateCapability, ...]
    theta: tuple[ThetaFact, ...]

    @property
    def decomposable(self) -> bool:
        return all(capability.decomposable
                   for capability in self.aggregates)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "relation": self.relation,
            "detail_never_null": list(self.detail_never_null),
            "aggregates": [c.to_json() for c in self.aggregates],
            "theta": [fact.to_json() for fact in self.theta],
            "decomposable": self.decomposable,
        }


@dataclass(frozen=True)
class CapabilityCertificate:
    """The machine-checkable capability claims of one plan.

    ``columns`` is positional over the plan's output schema — exactly
    what :func:`repro.obs.invariants.check_capabilities` cross-checks
    against executed rows.  ``complete`` is False when some subtree
    could not be analyzed (unknown schema, unrecognized operator); the
    verdicts that were produced are still sound — unanalyzable regions
    degrade to MAYBE, never to NEVER.
    """

    columns: tuple[ColumnCapability, ...]
    entries: tuple[GMDJCapabilityEntry, ...]
    complete: bool

    @property
    def never_null_columns(self) -> frozenset[str]:
        return frozenset(
            column.name for column in self.columns
            if column.nullability is NEVER
        )

    @property
    def decomposable(self) -> bool:
        """Every GMDJ's every aggregate merges across partitions."""
        return all(entry.decomposable for entry in self.entries)

    def detail_never_null(self) -> dict[str, frozenset[str]]:
        """Stored detail table -> bare columns certified NEVER-null.

        A table appearing as the detail of several GMDJs keeps only the
        columns every entry certifies (intersection — conservative).
        """
        merged: dict[str, frozenset[str]] = {}
        for entry in self.entries:
            if entry.relation is None:
                continue
            certified = frozenset(entry.detail_never_null)
            if entry.relation in merged:
                merged[entry.relation] &= certified
            else:
                merged[entry.relation] = certified
        return merged

    def summary(self) -> str:
        never = sum(1 for c in self.columns if c.nullability is NEVER)
        always = sum(1 for c in self.columns if c.nullability is ALWAYS)
        text = (
            f"capability certificate: {len(self.columns)} column(s) "
            f"({never} never-null, {always} always-null)"
        )
        if self.entries:
            counts = {klass: 0 for klass in AGGREGATE_CLASSES}
            for entry in self.entries:
                for capability in entry.aggregates:
                    counts[capability.klass] += 1
            classes = ", ".join(
                f"{count} {klass}" for klass, count in counts.items()
                if count
            )
            verdict = ("decomposable" if self.decomposable
                       else "holistic (single-scan only)")
            text += (
                f"; {len(self.entries)} GMDJ operator(s): "
                f"{classes or 'no aggregates'} — {verdict}"
            )
        if not self.complete:
            text += " (incomplete: unanalyzed subtree)"
        return text

    def to_json(self) -> dict:
        return {
            "complete": self.complete,
            "decomposable": self.decomposable,
            "columns": [column.to_json() for column in self.columns],
            "never_null_columns": sorted(self.never_null_columns),
            "entries": [entry.to_json() for entry in self.entries],
        }


# -- the abstract interpreter --------------------------------------------------


class _NullabilityPass:
    """One certification run's state: catalog plus a completeness bit."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.complete = True

    def env(
        self, node: Operator,
    ) -> tuple[Schema, list[Nullability]] | None:
        """Schema plus per-column nullability of one operator's output.

        Returns None (and clears ``complete``) when the schema itself
        cannot be derived; an operator without a dedicated transfer
        function degrades to all-MAYBE, also clearing ``complete``.
        """
        try:
            schema = node.schema(self.catalog)
        except ReproError:
            self.complete = False
            return None
        handler = getattr(self, f"_env_{type(node).__name__}", None)
        if handler is None:
            self.complete = False
            return schema, [MAYBE] * len(schema.fields)
        verdicts = handler(node, schema)
        if verdicts is None or len(verdicts) != len(schema.fields):
            self.complete = False
            return schema, [MAYBE] * len(schema.fields)
        return schema, verdicts

    def _child_env(
        self, child: Operator,
    ) -> tuple[Schema, list[Nullability]] | None:
        return self.env(child)

    # -- base facts (data-dependent, like column_possibly_null) ---------------

    def _env_ScanTable(self, node: ScanTable,
                       schema: Schema) -> list[Nullability] | None:
        try:
            rows = self.catalog.table(node.table_name).rows
        except ReproError:
            return None
        return stored_nullability(rows, len(schema.fields))

    def _env_TableValue(self, node: TableValue,
                        schema: Schema) -> list[Nullability] | None:
        return stored_nullability(node.relation.rows, len(schema.fields))

    # -- row-filtering / order-preserving operators: verdicts pass through ----

    def _passthrough(self, node: Operator,
                     schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.child)  # type: ignore[attr-defined]
        return None if resolved is None else resolved[1]

    _env_Select = _passthrough
    _env_Distinct = _passthrough
    _env_Limit = _passthrough
    _env_OrderBy = _passthrough
    _env_Rename = _passthrough
    _env_NestedSelect = _passthrough

    def _env_Project(self, node: Project,
                     schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.child)
        if resolved is None:
            return None
        child_schema, env = resolved
        return [
            expression_nullability(item.expression, child_schema, env)
            for item in node._resolved_items()
        ]

    def _env_Union(self, node: Union,
                   schema: Schema) -> list[Nullability] | None:
        left = self._child_env(node.left)
        right = self._child_env(node.right)
        if left is None or right is None:
            return None
        return [Nullability.join(a, b) for a, b in zip(left[1], right[1])]

    def _env_Intersect(self, node: Intersect,
                       schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.left)
        return None if resolved is None else resolved[1]

    def _env_Difference(self, node: Difference,
                        schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.left)
        return None if resolved is None else resolved[1]

    def _env_Join(self, node: Join,
                  schema: Schema) -> list[Nullability] | None:
        left = self._child_env(node.left)
        if left is None:
            return None
        if node.kind in ("semi", "anti"):
            return left[1]
        right = self._child_env(node.right)
        if right is None:
            return None
        if node.kind == "left":
            # Unmatched left rows pad the right side with NULL: NEVER
            # weakens to MAYBE; ALWAYS stays (NULL padding is NULL too).
            padded = [
                verdict if verdict is ALWAYS else
                (MAYBE if verdict is NEVER else verdict)
                for verdict in right[1]
            ]
            return left[1] + padded
        return left[1] + right[1]

    def _env_GroupBy(self, node: GroupBy,
                     schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.child)
        if resolved is None:
            return None
        child_schema, env = resolved
        verdicts: list[Nullability] = []
        for key in node.keys:
            try:
                verdicts.append(env[child_schema.index_of(key)])
            except ReproError:
                verdicts.append(MAYBE)
        keyed = bool(node.keys)
        for spec in node.aggregates:
            verdicts.append(
                aggregate_nullability(spec, keyed, child_schema, env)
            )
        return verdicts

    def _env_GMDJ(self, node: GMDJ,
                  schema: Schema) -> list[Nullability] | None:
        base = self._child_env(node.base)
        detail = self._child_env(node.detail)
        if base is None or detail is None:
            return None
        detail_schema, detail_env = detail
        verdicts = list(base[1])
        for block in node.blocks:
            for spec in block.aggregates:
                # A θ-group can be empty for any base tuple, so GMDJ
                # aggregates follow the scalar (keyed=False) rules.
                verdicts.append(aggregate_nullability(
                    spec, False, detail_schema, detail_env,
                ))
        return verdicts

    def _env_SelectGMDJ(self, node: SelectGMDJ,
                        schema: Schema) -> list[Nullability] | None:
        resolved = self.env(node.gmdj)
        return None if resolved is None else resolved[1]

    def _env_Apply(self, node: Apply,
                   schema: Schema) -> list[Nullability] | None:
        resolved = self._child_env(node.child)
        if resolved is None:
            return None
        verdicts = list(resolved[1])
        # The applied subquery's scalar outputs depend on per-row inner
        # evaluation; certify conservatively.
        verdicts.extend([MAYBE] * (len(schema.fields) - len(verdicts)))
        return verdicts


def _gmdj_entries(plan: Operator,
                  interpreter: _NullabilityPass) -> list[GMDJCapabilityEntry]:
    """Collect one capability entry per GMDJ, cost-certificate paths."""
    entries: list[GMDJCapabilityEntry] = []

    def block_facts(
        blocks: Iterable[ThetaBlock], detail_schema: Schema | None,
    ) -> tuple[tuple[AggregateCapability, ...], tuple[ThetaFact, ...]]:
        aggregates: list[AggregateCapability] = []
        theta: list[ThetaFact] = []
        for index, block in enumerate(blocks):
            aggregates.extend(
                classify_aggregate(spec) for spec in block.aggregates
            )
            theta.append(
                classify_condition(index, block.condition, detail_schema)
            )
        return tuple(aggregates), tuple(theta)

    def visit(node: Operator, path: str) -> None:
        if isinstance(node, SelectGMDJ):
            visit(node.gmdj, path)
            return
        if isinstance(node, GMDJ):
            relation = (
                node.detail.table_name
                if isinstance(node.detail, ScanTable) else None
            )
            detail = interpreter.env(node.detail)
            detail_schema: Schema | None = None
            never_null: tuple[str, ...] = ()
            if detail is not None:
                detail_schema, detail_env = detail
                never_null = tuple(
                    field.name
                    for field, verdict in zip(detail_schema.fields,
                                              detail_env)
                    if verdict is NEVER
                )
            aggregates, theta = block_facts(node.blocks, detail_schema)
            entries.append(GMDJCapabilityEntry(
                path=path or "plan",
                relation=relation,
                detail_never_null=never_null,
                aggregates=aggregates,
                theta=theta,
            ))
            visit(node.base, f"{path}/base")
            visit(node.detail, f"{path}/detail")
            return
        for position, child in enumerate(node.children()):
            visit(child,
                  f"{path}/{type(node).__name__.lower()}[{position}]")

    visit(plan, "")
    return entries


def certify_capabilities(plan: Operator,
                         catalog: Catalog) -> CapabilityCertificate:
    """Run the abstract-interpretation pass over one plan.

    Always returns a certificate: columns whose nullability cannot be
    derived are MAYBE and the certificate is marked incomplete — sound
    in the only direction that matters (NEVER/ALWAYS are claims, MAYBE
    is the absence of one).
    """
    interpreter = _NullabilityPass(catalog)
    resolved = interpreter.env(plan)
    if resolved is None:
        columns: tuple[ColumnCapability, ...] = ()
    else:
        schema, env = resolved
        columns = tuple(
            ColumnCapability(name=field.full_name, nullability=verdict)
            for field, verdict in zip(schema.fields, env)
        )
    entries = _gmdj_entries(plan, interpreter)
    return CapabilityCertificate(
        columns=columns,
        entries=tuple(entries),
        complete=interpreter.complete and bool(columns),
    )


# -- ambient certificate (consumed by the vectorized kernel) -------------------


_capabilities_var: ContextVar[CapabilityCertificate | None] = ContextVar(
    "repro_capabilities", default=None
)


def current_capabilities() -> CapabilityCertificate | None:
    """The certificate of the plan currently executing, if any."""
    return _capabilities_var.get()


class capability_scope:
    """Context manager installing a plan's certificate for one run.

    The planner wraps every GMDJ-strategy execution in this; the
    vectorized kernel reads it back with :func:`current_capabilities`
    to gate validity-mask skipping.  A ContextVar, so concurrent serve
    requests each see their own plan's certificate.
    """

    def __init__(self, certificate: CapabilityCertificate | None) -> None:
        self.certificate = certificate
        self._token: Token[CapabilityCertificate | None] | None = None

    def __enter__(self) -> CapabilityCertificate | None:
        self._token = _capabilities_var.set(self.certificate)
        return self.certificate

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _capabilities_var.reset(self._token)


__all__ = [
    "AGGREGATE_CLASSES",
    "AggregateCapability",
    "CONJUNCT_CLASSES",
    "CapabilityCertificate",
    "ColumnCapability",
    "DISTRIBUTIVE_MERGES",
    "GMDJCapabilityEntry",
    "Nullability",
    "ThetaFact",
    "aggregate_nullability",
    "capability_scope",
    "certify_capabilities",
    "classify_aggregate",
    "classify_condition",
    "classify_conjunct",
    "current_capabilities",
    "decomposable_aggregates",
    "expression_nullability",
    "observed_nullability",
    "stored_nullability",
]
