"""AST-based concurrency lint for the serve/pool tier.

The serve tier's correctness rests on three disciplines that nothing in
the type system enforces, so this lint checks them statically over the
Python source (``repro lint --concurrency PATH``, and CI over
``src/repro/serve`` + ``src/repro/gmdj/pool.py``):

* **RW-lock discipline** — tenant state mutates only under the writer
  lock.  *C301* fires on a call to a known mutating operation
  (``apply_ddl``, catalog/table DDL, cache invalidation) lexically
  inside a reader-lock region (between ``acquire_read`` and
  ``release_read``, or inside ``with lock.read():``).  *C302* fires on
  a call into the DDL path (``apply_ddl``) from a function that never
  acquires the writer lock first — except from a function itself named
  ``apply_*``, the convention for lock-free helpers documented as
  "must be called with the writer lock held".

* **ContextVar isolation** — work shipped to a pool runs with its own
  Tracer/IOStats/metrics context, never racing the coordinator's.
  *C303* fires on an executor submission (``.submit``/``.map``/
  ``.run_in_executor``) whose worker entry point demonstrably installs
  no isolation: a resolvable local function that calls none of
  ``collect``/``tracing``/``metrics_scope``, or a bare lambda — unless
  the call site wraps the work in ``contextvars.copy_context()`` or
  hands over a ``Context.run`` bound method.  Unresolvable callables
  (imported names) are left alone: like
  :meth:`~repro.lint.infer.PlanTyper.column_possibly_null`, the rule is
  conservative in the quiet direction and only fires on provable
  violations.

* **No shared-mutable capture** — *C304* fires when the callable
  submitted to a pool is a closure (lambda or nested ``def``) that
  references a name bound to a mutable literal (list/dict/set display
  or comprehension) in the enclosing function: the workers would share
  one unsynchronized object.

Findings are ordinary :class:`~repro.lint.diagnostics.PlanDiagnostic`
objects with ``path = "filename:line"`` so the report/render/JSON
machinery — and the CI error-severity gate — work unchanged.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.diagnostics import LintReport

#: Calls that mutate tenant/database state and therefore require the
#: writer lock (C301 inside reader regions).
MUTATING_CALLS = frozenset({
    "apply_ddl",
    "create_table",
    "drop_table",
    "create_index",
    "drop_indexes",
    "load_csv",
    "invalidate",
})

#: The tenant-level DDL entry point C302 tracks.  Helpers named
#: ``apply_*`` are the documented lock-free layer underneath it.
DDL_ENTRY = "apply_ddl"

#: Calls that install per-worker context isolation.
ISOLATING_CALLS = frozenset({
    "collect", "tracing", "metrics_scope", "copy_context",
})

#: Executor submission methods -> position of the callable argument.
SUBMIT_METHODS = {"submit": 0, "map": 0, "run_in_executor": 1}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _call_name(func: ast.expr) -> str | None:
    """The bare/attribute name a call dispatches through, if simple."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _local_nodes(function: _FunctionNode) -> Iterator[ast.AST]:
    """Every node of a function body, excluding nested function/class
    bodies (those execute under their own locks and contexts) but
    including lambda bodies' *references* via the Lambda node itself."""
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_calls(function: _FunctionNode) -> list[ast.Call]:
    return [node for node in _local_nodes(function)
            if isinstance(node, ast.Call)]


def _with_regions(function: _FunctionNode,
                  attr: str) -> list[tuple[int, int]]:
    """Line spans of ``with <expr>.<attr>():`` blocks (read/write)."""
    regions: list[tuple[int, int]] = []
    for node in _local_nodes(function):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Call)
                    and _call_name(expr.func) == attr):
                regions.append((node.lineno, node.end_lineno or node.lineno))
                break
    return regions


def _paired_regions(calls: list[ast.Call], acquire: str,
                    release: str) -> list[tuple[int, int]]:
    """Line spans between explicit acquire/release call pairs.

    Unmatched acquires extend to the end of the function (the
    conservative reading: the lock is held from there on).
    """
    acquires = sorted(c.lineno for c in calls
                      if _call_name(c.func) == acquire)
    releases = sorted(c.lineno for c in calls
                      if _call_name(c.func) == release)
    regions: list[tuple[int, int]] = []
    for start in acquires:
        following = [line for line in releases if line >= start]
        regions.append((start, following[0] if following else 10 ** 9))
    return regions


def _in_regions(line: int, regions: list[tuple[int, int]]) -> bool:
    return any(start < line <= end or start == line
               for start, end in regions)


def _mutable_names(function: _FunctionNode) -> frozenset[str]:
    """Names the function binds to mutable literals/comprehensions."""
    mutable: set[str] = set()
    literal_types = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
    for node in _local_nodes(function):
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       literal_types):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
    return frozenset(mutable)


def _referenced_names(node: ast.AST) -> set[str]:
    return {child.id for child in ast.walk(node)
            if isinstance(child, ast.Name)}


def _calls_isolator(function_or_lambda: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call)
        and _call_name(node.func) in ISOLATING_CALLS
        for node in ast.walk(function_or_lambda)
    )


def _unwrap_partial(callable_arg: ast.expr) -> ast.expr:
    """``functools.partial(f, ...)`` submits ``f``."""
    if (isinstance(callable_arg, ast.Call)
            and _call_name(callable_arg.func) == "partial"
            and callable_arg.args):
        return callable_arg.args[0]
    return callable_arg


class _ModuleChecker:
    """One source file's concurrency-lint pass."""

    def __init__(self, tree: ast.Module, filename: str,
                 report: LintReport) -> None:
        self.tree = tree
        self.filename = filename
        self.report = report
        #: Module-level function definitions, for resolving the worker
        #: entry point a submission names.
        self.functions: dict[str, _FunctionNode] = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def run(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)

    def _at(self, line: int) -> str:
        return f"{self.filename}:{line}"

    def _check_function(self, function: _FunctionNode) -> None:
        calls = _local_calls(function)
        nested = {
            node.name: node for node in ast.walk(function)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not function
        }
        read_regions = (
            _paired_regions(calls, "acquire_read", "release_read")
            + _with_regions(function, "read")
        )
        write_regions = (
            _paired_regions(calls, "acquire_write", "release_write")
            + _with_regions(function, "write")
        )
        write_acquired_at = [start for start, _ in write_regions]

        for call in calls:
            name = _call_name(call.func)
            if name in MUTATING_CALLS and _in_regions(call.lineno,
                                                      read_regions):
                self.report.add(
                    "C301",
                    f"{name}() mutates tenant state under a reader lock",
                    self._at(call.lineno),
                    hint="acquire the writer lock for DDL-path mutations",
                )
            if name == DDL_ENTRY:
                if function.name.startswith("apply"):
                    # The lock-free helper layer itself; its callers are
                    # the ones that must hold the writer lock.
                    continue
                held = any(start <= call.lineno
                           for start in write_acquired_at)
                if not held:
                    self.report.add(
                        "C302",
                        f"{DDL_ENTRY}() reached without acquiring the "
                        f"writer lock in {function.name}()",
                        self._at(call.lineno),
                        hint="wrap the DDL path in acquire_write/"
                             "release_write (or `with lock.write():`)",
                    )

        self._check_submissions(function, calls, nested)

    def _check_submissions(
        self, function: _FunctionNode, calls: list[ast.Call],
        nested: dict[str, _FunctionNode],
    ) -> None:
        caller_isolates = any(
            _call_name(call.func) == "copy_context" for call in calls
        )
        shared = _mutable_names(function)
        for call in calls:
            if not isinstance(call.func, ast.Attribute):
                continue  # builtin map()/submit() shadowing, not a pool
            position = SUBMIT_METHODS.get(call.func.attr)
            if position is None or len(call.args) <= position:
                continue
            worker = _unwrap_partial(call.args[position])
            self._check_worker_isolation(
                call, worker, nested, caller_isolates,
            )
            self._check_shared_capture(call, worker, nested, shared)

    def _check_worker_isolation(
        self, call: ast.Call, worker: ast.expr,
        nested: dict[str, _FunctionNode], caller_isolates: bool,
    ) -> None:
        if caller_isolates:
            return
        if isinstance(worker, ast.Attribute) and worker.attr == "run":
            return  # a Context.run bound method carries its own context
        target: ast.AST | None = None
        if isinstance(worker, ast.Lambda):
            target = worker
        elif isinstance(worker, ast.Name):
            target = nested.get(worker.id) or self.functions.get(worker.id)
        if target is None:
            return  # unresolvable: stay quiet rather than guess
        if _calls_isolator(target):
            return
        label = (worker.id if isinstance(worker, ast.Name) else "lambda")
        self.report.add(
            "C303",
            f"pool submission of {label} installs no ContextVar "
            f"isolation (collect/tracing/metrics_scope)",
            self._at(call.lineno),
            hint="isolate worker state with collect()/tracing()/"
                 "metrics_scope(), or submit through "
                 "contextvars.copy_context().run",
        )

    def _check_shared_capture(
        self, call: ast.Call, worker: ast.expr,
        nested: dict[str, _FunctionNode], shared: frozenset[str],
    ) -> None:
        if not shared:
            return
        body: ast.AST | None = None
        if isinstance(worker, ast.Lambda):
            body = worker.body
        elif isinstance(worker, ast.Name) and worker.id in nested:
            body = nested[worker.id]
        if body is None:
            return
        captured = sorted(_referenced_names(body) & shared)
        if captured:
            self.report.add(
                "C304",
                f"pool submission captures shared mutable "
                f"{', '.join(captured)} from the enclosing scope",
                self._at(call.lineno),
                hint="pass data into the worker as an argument and "
                     "merge results on the coordinator",
            )


def lint_concurrency_source(
    source: str, filename: str = "<source>",
    report: LintReport | None = None,
) -> LintReport:
    """Run the concurrency lint over one Python source text."""
    report = report if report is not None else LintReport()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        report.add(
            "C302",
            f"source does not parse: {error.msg}",
            f"{filename}:{error.lineno or 0}",
        )
        return report
    _ModuleChecker(tree, filename, report).run()
    return report


def lint_concurrency_paths(
    paths: Iterable[str | Path],
) -> LintReport:
    """Run the concurrency lint over files and directories of sources."""
    report = LintReport()
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            lint_concurrency_source(
                file.read_text(), filename=str(file), report=report,
            )
    return report


__all__ = [
    "DDL_ENTRY",
    "ISOLATING_CALLS",
    "MUTATING_CALLS",
    "SUBMIT_METHODS",
    "lint_concurrency_paths",
    "lint_concurrency_source",
]
