"""Advisory lints: correct plans that leave paper rewrites on the table.

* **A201** — stacked GMDJs over the same detail table would coalesce
  into a single operator (Proposition 4.1), halving detail scans; the
  plan was built or translated without ``optimize=True``.
* **A202** — a join over a GMDJ whose condition only touches the join's
  other input and the GMDJ's base can push into the base
  (Theorem 3.4), keeping the GMDJ's base-values relation small.
* **A203** — a θ-block carries no equality conjunct linking base and
  detail, so hash grouping is unavailable and evaluation degrades to a
  per-base-tuple scan of the active list (the Figure 4 regime).
* **A204** — a scalar comparison against a MIN/MAX aggregate subquery
  with an inequality looks like the classic extremum shortcut for a
  quantifier; footnote 2 of the paper notes ``x φ MAX(S)`` is *not*
  ``x φ ALL(S)`` on an empty range (ALL is TRUE, MAX is NULL).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algebra.analysis import factor_condition, is_trivially_true
from repro.algebra.nested import ScalarComparison
from repro.algebra.operators import Join, Select
from repro.gmdj.coalesce import merge_stacked, pull_up_base_selection
from repro.gmdj.operator import GMDJ
from repro.lint.diagnostics import LintReport
from repro.storage.schema import Schema

if TYPE_CHECKING:
    from repro.lint.infer import PlanTyper


def check_missed_coalesce(gmdj: GMDJ, report: LintReport, path: str) -> None:
    """A201: this GMDJ and its base would merge under Prop 4.1."""
    mergeable = merge_stacked(gmdj) is not None
    if not mergeable and isinstance(gmdj.base, Select):
        # The coalescer's pull-up step may expose a merge.
        pulled = pull_up_base_selection(gmdj)
        mergeable = (
            pulled is not None
            and isinstance(pulled.child, GMDJ)
            and merge_stacked(pulled.child) is not None
        )
    if mergeable:
        report.add(
            "A201",
            "stacked GMDJs scan the same detail table and their blocks "
            "are independent; Proposition 4.1 coalesces them into one "
            "operator with a single detail scan",
            path,
            hint="translate with optimize=True or run "
                 "repro.gmdj.coalesce.coalesce_plan",
        )


def check_join_pushdown(
    join: Join, left_schema: Schema, typer: PlanTyper, path: str
) -> None:
    """A202: ``T ⋈_C MD(B, R)`` with C over T ∪ B pushes down (Thm 3.4)."""
    gmdj = join.right
    if not isinstance(gmdj, GMDJ):
        return
    if is_trivially_true(join.condition):
        return
    references = join.condition.references()
    if not references:
        return
    try:
        base_schema = gmdj.base.schema(typer.catalog)
        pushed = left_schema.concat(base_schema)
    except Exception:
        return
    if all(pushed.has(ref) for ref in references):
        typer.report.add(
            "A202",
            "join condition references only the left input and the "
            "GMDJ's base; Theorem 3.4 allows pushing the join into the "
            "base, keeping the base-values relation small",
            path,
            hint="rewrite with repro.gmdj.pushdown.push_join_into_base",
        )


def check_theta_hashability(
    gmdj: GMDJ,
    base_schema: Schema,
    detail_schema: Schema,
    report: LintReport,
    path: str,
) -> None:
    """A203: θ has no equality conjunct, so hash grouping cannot apply."""
    for position, block in enumerate(gmdj.blocks):
        condition = block.condition
        if is_trivially_true(condition):
            continue
        references = condition.references()
        if not any(base_schema.has(ref) for ref in references):
            # Base-independent block (an uncorrelated quantifier count):
            # there is no per-base grouping to hash in the first place.
            continue
        try:
            factored = factor_condition(condition, base_schema, detail_schema)
        except Exception:
            continue
        if not factored.has_equality:
            report.add(
                "A203",
                f"theta block {position} has no base=detail equality "
                f"conjunct; evaluation degrades to scanning every "
                f"active base tuple per detail row (Figure 4 regime)",
                f"{path}:blocks[{position}]:condition",
                hint="an equality correlation enables hash grouping of "
                     "base tuples; this is inherent for <>/range-only "
                     "correlations",
            )


def check_extremum_quantifier(
    leaf: ScalarComparison, report: LintReport, path: str
) -> None:
    """A204: ``x φ (SELECT MIN/MAX ...)`` with an ordering comparison."""
    aggregate = leaf.subquery.aggregate
    if aggregate is None or aggregate.function not in ("min", "max"):
        return
    if leaf.op not in ("<", "<=", ">", ">="):
        return
    report.add(
        "A204",
        f"comparison {leaf.op!r} against {aggregate.function}() emulates "
        f"a quantifier only on non-empty ranges: on an empty range ALL "
        f"is TRUE while {aggregate.function}() is NULL (UNKNOWN) — "
        f"footnote 2",
        path,
        hint="if universal/existential semantics are intended, write "
             "ALL/SOME and let the count-pair translation handle the "
             "empty range",
    )
