"""Correctness lints: scope validation and 3VL NULL-safety.

Two families of checks live here (scope/type errors are emitted directly
by :class:`~repro.lint.infer.PlanTyper`):

* :func:`check_gmdj_blocks` — structural checks over a GMDJ's θ-blocks,
  in particular the **L007** NULL-unsafe identity-link detector.  The
  translator's push-down machinery (Theorems 3.3/3.4) joins a copy of an
  outer base into a plan level and re-links it upward with *identity
  conjuncts* over every attribute of the copy.  Those links must use the
  null-safe equality ``a = b OR (a IS NULL AND b IS NULL)``; a plain
  ``=`` is UNKNOWN on NULL/NULL and silently drops every base row
  containing a NULL — the regression PR 1 fixed, re-detected statically
  here.
* :func:`check_quantifier_nullability` — **W101**, the Table 1
  ALL/NOT-IN hazard: a universal quantifier over a column whose stored
  data currently holds NULLs has counter-intuitive SQL semantics (one
  NULL poisons ``NOT IN`` into an empty result).  The GMDJ count-pair
  translation reproduces SQL exactly, so this is a warning about the
  query, not the plan.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.algebra.expressions import (
    And,
    Column,
    Comparison,
    Expression,
    IsNull,
    Or,
    conjuncts_of,
)
from repro.algebra.nested import QuantifiedComparison
from repro.gmdj.operator import GMDJ
from repro.lint.diagnostics import LintReport
from repro.storage.schema import Schema

if TYPE_CHECKING:
    from repro.lint.infer import Frame, PlanTyper

#: Qualifiers the translator invents for pushed-down base copies:
#: ``__pN`` (translate.py) and ``__bN`` (pushdown.py, Theorem 3.3).
_INTERNAL_QUALIFIER = re.compile(r"^__[pb]\d+$")


def is_internal_qualifier(qualifier: str | None) -> bool:
    return qualifier is not None and bool(_INTERNAL_QUALIFIER.match(qualifier))


def match_null_safe_equal(
    expression: Expression,
) -> tuple[Column, Column] | None:
    """Match ``a = b OR (a IS NULL AND b IS NULL)`` over two columns."""
    if not isinstance(expression, Or):
        return None
    eq, null_pair = expression.left, expression.right
    if not (isinstance(eq, Comparison) and eq.op == "="
            and isinstance(eq.left, Column) and isinstance(eq.right, Column)):
        return None
    if not isinstance(null_pair, And):
        return None
    left_null, right_null = null_pair.left, null_pair.right
    if not (isinstance(left_null, IsNull) and not left_null.negated
            and isinstance(right_null, IsNull) and not right_null.negated):
        return None
    if not (isinstance(left_null.operand, Column)
            and isinstance(right_null.operand, Column)):
        return None
    expected = {eq.left.reference, eq.right.reference}
    actual = {left_null.operand.reference, right_null.operand.reference}
    if expected != actual:
        return None
    return eq.left, eq.right


def _orient_link(
    left: Column, right: Column, base: Schema, detail: Schema
) -> tuple[Column, Column] | None:
    """Orient a candidate link as (base-side, detail-side copy).

    Identity links always place the pushed-down copy (internal
    qualifier) on the *detail* side of the GMDJ; correlation conjuncts
    substituted by non-neighboring resolution place their copy on the
    *base* side, which keeps them out of this detector.
    """
    for base_col, detail_col in ((left, right), (right, left)):
        if not is_internal_qualifier(detail_col.qualifier):
            continue
        if not any(
            f.qualifier == detail_col.qualifier and f.name == detail_col.bare_name
            for f in detail.fields
        ):
            continue
        if not base.has(base_col.reference):
            continue
        if base_col.bare_name != detail_col.bare_name:
            continue
        return base_col, detail_col
    return None


def check_gmdj_blocks(
    gmdj: GMDJ,
    base_schema: Schema,
    detail_schema: Schema,
    report: LintReport,
    path: str,
) -> None:
    """Run the θ-block structural rules on one GMDJ node (L007)."""
    for position, block in enumerate(gmdj.blocks):
        block_path = f"{path}:blocks[{position}]:condition"
        _check_identity_links(
            block.condition, base_schema, detail_schema, report, block_path
        )


def _check_identity_links(
    condition: Expression,
    base_schema: Schema,
    detail_schema: Schema,
    report: LintReport,
    path: str,
) -> None:
    safe: dict[tuple[str | None, str], set[str]] = {}
    unsafe: dict[tuple[str | None, str], set[str]] = {}
    for conjunct in conjuncts_of(condition):
        matched = match_null_safe_equal(conjunct)
        if matched is not None:
            bucket = safe
            left, right = matched
        elif (isinstance(conjunct, Comparison) and conjunct.op == "="
              and isinstance(conjunct.left, Column)
              and isinstance(conjunct.right, Column)):
            bucket = unsafe
            left, right = conjunct.left, conjunct.right
        else:
            continue
        oriented = _orient_link(left, right, base_schema, detail_schema)
        if oriented is None:
            continue
        base_col, detail_col = oriented
        key = (base_col.qualifier, detail_col.qualifier)
        bucket.setdefault(key, set()).add(detail_col.bare_name)
    for key, unsafe_names in unsafe.items():
        copy_qualifier = key[1]
        copy_fields = {
            f.name for f in detail_schema.fields
            if f.qualifier == copy_qualifier
        }
        covered = unsafe_names | safe.get(key, set())
        if copy_fields and covered >= copy_fields:
            names = ", ".join(sorted(unsafe_names))
            report.add(
                "L007",
                f"identity link to pushed-down copy {copy_qualifier!r} "
                f"uses plain '=' on attribute(s) {names}; NULL/NULL "
                f"compares UNKNOWN, so base rows containing NULLs are "
                f"silently dropped",
                path,
                hint="use the null-safe form a = b OR "
                     "(a IS NULL AND b IS NULL) for every identity "
                     "conjunct (Theorems 3.3/3.4 push-down)",
            )


def check_quantifier_nullability(
    leaf: QuantifiedComparison,
    outer_frames: list[Frame],
    inner_frames: list[Frame],
    typer: PlanTyper,
    path: str,
) -> None:
    """W101: ALL / NOT IN over data that currently contains NULLs."""
    if leaf.quantifier != "all":
        return
    item = leaf.subquery.item
    nullable_sides = []
    if item is not None and typer.column_possibly_null(item, inner_frames):
        nullable_sides.append(f"subquery item {item!r}")
    if typer.column_possibly_null(leaf.outer, outer_frames):
        nullable_sides.append(f"outer operand {leaf.outer!r}")
    if not nullable_sides:
        return
    form = "NOT IN" if leaf.op == "<>" else f"{leaf.op} ALL"
    report_hint = (
        "a single NULL makes the quantifier UNKNOWN for otherwise "
        "non-matching rows; filter NULLs explicitly (IS NOT NULL) if "
        "two-valued behaviour is intended"
    )
    typer.report.add(
        "W101",
        f"{form} ranges over NULL-bearing data ({'; '.join(nullable_sides)})",
        path,
        hint=report_hint,
    )
