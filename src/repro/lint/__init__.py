"""Static plan verification: schema/type inference, 3VL lints, cost bounds.

:func:`lint_plan` walks a (possibly nested, possibly translated) algebra
tree *without executing it* and returns a
:class:`~repro.lint.diagnostics.LintReport` of typed diagnostics —
scope/type errors, NULL-semantics hazards, and advisory notes about
paper rewrites the plan missed.  :func:`certify_plan` derives the
structural cost bounds (output ≤ |B|, single detail scan) as a
:class:`~repro.lint.cost.CostCertificate` that
:func:`repro.obs.invariants.check_trace` cross-checks against runtime
counters.

>>> from repro import Database, DataType
>>> from repro.lint import lint_plan
>>> db = Database()
>>> _ = db.create_table("T", [("K", DataType.INTEGER)], [(1,)])
>>> lint_plan(db.sql("SELECT K FROM T"), db.catalog).ok
True
"""

from __future__ import annotations

from repro.algebra.operators import Operator
from repro.lint.absint import (
    AggregateCapability,
    CapabilityCertificate,
    ColumnCapability,
    GMDJCapabilityEntry,
    Nullability,
    ThetaFact,
    capability_scope,
    certify_capabilities,
    classify_aggregate,
    classify_condition,
    classify_conjunct,
    current_capabilities,
    decomposable_aggregates,
    expression_nullability,
)
from repro.lint.concurrency import (
    lint_concurrency_paths,
    lint_concurrency_source,
)
from repro.lint.cost import CostCertificate, GMDJCostEntry, certify_batch, certify_plan
from repro.lint.diagnostics import (
    DIAGNOSTIC_CODES,
    LintReport,
    LintWarning,
    PlanDiagnostic,
    Severity,
    plan_codes,
    severity_of,
)
from repro.lint.infer import PlanTyper
from repro.storage.catalog import Catalog


def lint_plan(
    plan: Operator, catalog: Catalog, *, advice: bool = True
) -> LintReport:
    """Statically verify one plan against the given catalog.

    With ``advice=False`` the advisory (``Axxx``) rules are skipped —
    useful when linting deliberately un-optimized plans, whose missed
    rewrites are the point.
    """
    report = LintReport()
    PlanTyper(catalog, report, advice=advice).infer(plan)
    return report


__all__ = [
    "AggregateCapability",
    "CapabilityCertificate",
    "ColumnCapability",
    "CostCertificate",
    "DIAGNOSTIC_CODES",
    "GMDJCapabilityEntry",
    "GMDJCostEntry",
    "LintReport",
    "LintWarning",
    "Nullability",
    "PlanDiagnostic",
    "PlanTyper",
    "Severity",
    "ThetaFact",
    "capability_scope",
    "certify_batch",
    "certify_capabilities",
    "certify_plan",
    "classify_aggregate",
    "classify_condition",
    "classify_conjunct",
    "current_capabilities",
    "decomposable_aggregates",
    "expression_nullability",
    "lint_concurrency_paths",
    "lint_concurrency_source",
    "lint_plan",
    "plan_codes",
    "severity_of",
]
