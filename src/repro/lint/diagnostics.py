"""Typed diagnostics for the static plan verifier.

A :class:`PlanDiagnostic` pins one finding to a node *path* inside the
plan tree, carries a stable rule ``code`` (see :data:`DIAGNOSTIC_CODES`),
a :class:`Severity`, a human-readable message, and an optional fix hint.
A :class:`LintReport` aggregates the findings of one
:func:`repro.lint.lint_plan` run.

Severity semantics:

* ``ERROR``   — the plan is wrong: it will raise at run time, or silently
  compute something other than SQL semantics (the 3VL hazards).
* ``WARNING`` — the plan is suspicious under the paper's NULL analysis
  (e.g. ``NOT IN`` over a column that currently holds NULLs).
* ``ADVICE``  — the plan is correct but misses a Section 3/4 rewrite
  (coalescing, base pushdown) or will degrade (no hashable θ conjunct).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LintWarning(UserWarning):
    """Emitted by ``QueryOptions(lint="warn")`` for error diagnostics."""


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    ADVICE = 1
    WARNING = 2
    ERROR = 3

    @property
    def label(self) -> str:
        return self.name.lower()


#: Every rule the linter can emit, keyed by its stable code.  Codes are
#: grouped by severity band: ``Lxxx`` errors, ``Wxxx`` warnings, ``Axxx``
#: advisories, ``Cxxx`` concurrency errors (source-level, emitted by
#: :mod:`repro.lint.concurrency` rather than :func:`lint_plan`).  Tests
#: assert each code has at least one triggering fixture — a plan fixture
#: for plan codes, a source fixture for ``Cxxx`` — so additions here
#: must come with a fixture.
DIAGNOSTIC_CODES: dict[str, str] = {
    "L001": "unknown attribute reference",
    "L002": "ambiguous attribute reference",
    "L003": "type mismatch in expression",
    "L004": "arity mismatch in set operation",
    "L005": "duplicate output attribute",
    "L006": "theta-block reference escapes base and detail scope",
    "L007": "NULL-unsafe identity link in pushed-down correlation",
    "L008": "unknown table",
    "L009": "aggregate over non-numeric argument",
    "L010": "non-predicate expression used as a filter",
    "W101": "ALL/NOT IN quantifier over a column containing NULLs",
    "W102": "comparison against a NULL literal is always UNKNOWN",
    "A201": "stacked GMDJs over the same detail table (Prop 4.1)",
    "A202": "join over a GMDJ base could push down (Thm 3.4)",
    "A203": "theta block has no equality conjunct (hash grouping unavailable)",
    "A204": "quantifier emulated via MIN/MAX extremum (footnote 2 hazard)",
    "C301": "state mutation under a reader lock",
    "C302": "DDL path reached without the writer lock",
    "C303": "pool submission without ContextVar isolation",
    "C304": "shared mutable captured into a pool submission",
}

_SEVERITY_BY_PREFIX = {
    "L": Severity.ERROR,
    "W": Severity.WARNING,
    "A": Severity.ADVICE,
    "C": Severity.ERROR,
}


def plan_codes() -> set[str]:
    """Codes :func:`repro.lint.lint_plan` can emit (everything but the
    source-level concurrency band)."""
    return {code for code in DIAGNOSTIC_CODES if not code.startswith("C")}


def severity_of(code: str) -> Severity:
    """The severity band a diagnostic code belongs to."""
    try:
        return _SEVERITY_BY_PREFIX[code[0]]
    except (IndexError, KeyError):
        raise ValueError(f"malformed diagnostic code {code!r}") from None


@dataclass(frozen=True)
class PlanDiagnostic:
    """One finding of the static verifier."""

    code: str
    message: str
    path: str
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(
                f"unregistered diagnostic code {self.code!r}; "
                f"add it to DIAGNOSTIC_CODES"
            )

    @property
    def severity(self) -> Severity:
        return severity_of(self.code)

    def render(self) -> str:
        """One-line human rendering: ``[L001] path: message (hint)``."""
        text = f"[{self.code}] {self.path}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "path": self.path,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """All findings of one lint run over one plan."""

    diagnostics: list[PlanDiagnostic] = field(default_factory=list)

    def add(
        self, code: str, message: str, path: str, hint: str | None = None
    ) -> None:
        self.diagnostics.append(PlanDiagnostic(code, message, path, hint))

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def at_severity(self, severity: Severity) -> list[PlanDiagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[PlanDiagnostic]:
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[PlanDiagnostic]:
        return self.at_severity(Severity.WARNING)

    @property
    def advice(self) -> list[PlanDiagnostic]:
        return self.at_severity(Severity.ADVICE)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic fired."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def sorted(self) -> list[PlanDiagnostic]:
        """Diagnostics worst-first, then by code, then by path."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, d.path),
        )

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.advice)} advisory(ies)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(d.render() for d in self.sorted())
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "summary": self.summary(),
            "diagnostics": [d.to_json() for d in self.sorted()],
        }
