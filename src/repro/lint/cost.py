"""Static cost certification for GMDJ plans.

The paper's cost claims are *structural*: Definition 2.1 bounds a GMDJ's
output by its base cardinality no matter what the θ-blocks say, and the
evaluation algorithm of §2.2 consumes the detail relation in exactly one
scan per evaluation regardless of how many blocks coalescing packed in.
Both facts are visible in the plan tree alone, so a
:class:`CostCertificate` can be derived without executing anything:

* one :class:`GMDJCostEntry` per GMDJ operator, carrying the claims
  ``output_rows ≤ base_rows`` and "one detail scan per evaluation";
* ``detail_scan_counts`` — for every stored table appearing as a GMDJ
  detail, the exact number of ``detail_scan`` spans a plain-mode run of
  the certified plan must produce (one per GMDJ over it);
* ``single_scan_tables`` — the Prop. 4.1 subset scanned exactly once.

The certificate is *complete* only when the tree holds no un-translated
residue (:class:`~repro.algebra.nested.NestedSelect` or
:class:`~repro.algebra.apply_op.Apply` nodes): those evaluate their
inner plans once per outer row, so per-plan span counts are no longer
predictable from structure.  :func:`repro.obs.invariants.check_trace`
only cross-checks exact counts for complete certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.apply_op import Apply
from repro.algebra.nested import NestedSelect
from repro.algebra.operators import Operator, ScanTable
from repro.gmdj.evaluate import SelectGMDJ
from repro.gmdj.operator import GMDJ


@dataclass(frozen=True)
class GMDJCostEntry:
    """The static cost claims of one GMDJ operator in the plan.

    ``relation`` is the stored detail table's name when the detail is a
    plain scan, else ``None`` (a derived detail still obeys both bounds,
    but its scan spans carry no stored-table attribution).
    """

    path: str
    relation: str | None
    blocks: int
    completion: bool

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "relation": self.relation,
            "blocks": self.blocks,
            "completion": self.completion,
            "claims": ["output_rows <= base_rows",
                       "1 detail scan per evaluation"],
        }


@dataclass(frozen=True)
class CostCertificate:
    """Structurally derived cost bounds for one plan.

    ``complete`` is False when the plan still contains nested residue
    (Apply / NestedSelect), in which case only the per-operator bounds
    hold and the whole-trace scan counts are not certified.
    """

    entries: tuple[GMDJCostEntry, ...]
    detail_scan_counts: tuple[tuple[str, int], ...]
    single_scan_tables: frozenset[str]
    complete: bool

    @property
    def scan_counts(self) -> dict[str, int]:
        return dict(self.detail_scan_counts)

    def summary(self) -> str:
        if not self.entries:
            return "cost certificate: no GMDJ operators (no static claims)"
        scans = ", ".join(
            f"{table}×{count}" for table, count in self.detail_scan_counts
        )
        qualifier = "" if self.complete else " (incomplete: nested residue)"
        text = (
            f"cost certificate: {len(self.entries)} GMDJ operator(s), "
            f"output ≤ |B| each"
        )
        if scans:
            text += f"; detail scans: {scans}"
        return text + qualifier

    def to_json(self) -> dict:
        return {
            "complete": self.complete,
            "entries": [entry.to_json() for entry in self.entries],
            "detail_scan_counts": {
                table: count for table, count in self.detail_scan_counts
            },
            "single_scan_tables": sorted(self.single_scan_tables),
        }


def certify_plan(plan: Operator) -> CostCertificate:
    """Derive the cost certificate of a translated plan structurally."""
    entries: list[GMDJCostEntry] = []
    counts: dict[str, int] = {}
    residue = False

    def visit(node: Operator, path: str, completion: bool) -> None:
        nonlocal residue
        if isinstance(node, SelectGMDJ):
            # The fused operator evaluates its inner GMDJ directly; the
            # pair certifies as one operator with the completion claim
            # (Thms. 4.1/4.2: fusing adds no detail scans).
            visit(node.gmdj, path, True)
            return
        if isinstance(node, (NestedSelect, Apply)):
            residue = True
        if isinstance(node, GMDJ):
            relation = (
                node.detail.table_name
                if isinstance(node.detail, ScanTable) else None
            )
            entries.append(GMDJCostEntry(
                path=path or "plan",
                relation=relation,
                blocks=len(node.blocks),
                completion=completion,
            ))
            if relation is not None:
                counts[relation] = counts.get(relation, 0) + 1
            visit(node.base, f"{path}/base", False)
            visit(node.detail, f"{path}/detail", False)
            return
        for position, child in enumerate(node.children()):
            visit(child, f"{path}/{type(node).__name__.lower()}[{position}]",
                  False)

    visit(plan, "", False)
    single = frozenset(
        table for table, count in counts.items() if count == 1
    )
    return CostCertificate(
        entries=tuple(entries),
        detail_scan_counts=tuple(sorted(counts.items())),
        single_scan_tables=single,
        complete=not residue,
    )


def certify_batch(certificates) -> CostCertificate:
    """Merge per-share-group certificates into one batch-level claim.

    Used by :mod:`repro.engine.mqo`: each coalesced share group carries
    its own single-scan certificate; the batch certificate sums their
    detail-scan counts, so ``single_scan_tables`` names the tables the
    whole batch promises to scan exactly once (Prop. 4.1 at workload
    scale — one detail scan per detail table per batch when every
    group over that table coalesced).
    """
    entries: list[GMDJCostEntry] = []
    counts: dict[str, int] = {}
    complete = True
    for position, certificate in enumerate(certificates):
        for entry in certificate.entries:
            entries.append(GMDJCostEntry(
                path=f"group[{position}]/{entry.path}",
                relation=entry.relation,
                blocks=entry.blocks,
                completion=entry.completion,
            ))
        for table, count in certificate.detail_scan_counts:
            counts[table] = counts.get(table, 0) + count
        complete = complete and certificate.complete
    return CostCertificate(
        entries=tuple(entries),
        detail_scan_counts=tuple(sorted(counts.items())),
        single_scan_tables=frozenset(
            table for table, count in counts.items() if count == 1
        ),
        complete=complete,
    )
