"""Algorithm SubqueryToGMDJ: translating nested queries into GMDJ plans."""

from repro.unnesting.normalize import push_down_negations
from repro.unnesting.rules import LeafMapping, NameGenerator, map_leaf
from repro.unnesting.translate import subquery_to_gmdj

__all__ = [
    "LeafMapping",
    "NameGenerator",
    "map_leaf",
    "push_down_negations",
    "subquery_to_gmdj",
]
