"""Table 1: mapping nested query constructs to GMDJ building blocks.

For one subquery leaf (with an already subquery-free inner predicate θ),
:func:`map_leaf` produces

* the θ-blocks ``(l_i, θ_i)`` the enclosing GMDJ must compute, and
* the replacement condition C over the fresh aggregate columns that takes
  the leaf's place in the enclosing predicate.

The six rows of the paper's Table 1:

=============================================  ===============================================
Nested form                                    GMDJ translation
=============================================  ===============================================
``σ[x φ π[y]σ[θ]R] B``                         ``σ[cnt = 1]  MD(B, R, count(*)→cnt, θ ∧ x φ y)``
``σ[x φ π[f(y)]σ[θ]R] B``                      ``σ[x φ fy]   MD(B, R, f(y)→fy, θ)``
``σ[x φ_some π[y]σ[θ]R] B``                    ``σ[cnt > 0]  MD(B, R, count(*)→cnt, θ ∧ x φ y)``
``σ[x φ_all π[y]σ[θ]R] B``                     ``σ[cnt1 = cnt2] MD(B, R, ((cnt1),(cnt2)), ((θ ∧ x φ y), θ))``
``σ[∃ σ[θ]R] B``                               ``σ[cnt > 0]  MD(B, R, count(*)→cnt, θ)``
``σ[∄ σ[θ]R] B``                               ``π[A] σ[cnt = 0] MD(B, R, count(*)→cnt, θ)``
=============================================  ===============================================

Counting is the central mechanism: every quantified/existential form turns
into a plain comparison over a ``count(*)``, which is trivially correct
under three-valued logic because only TRUE rows are counted (where-clause
truncation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.aggregates import AggregateSpec, count_star
from repro.algebra.expressions import (
    Column,
    Comparison,
    Expression,
    Literal,
    conjoin,
)
from repro.algebra.nested import (
    Exists,
    QuantifiedComparison,
    ScalarComparison,
    SubqueryPredicate,
)
from repro.errors import TranslationError
from repro.gmdj.operator import ThetaBlock


class NameGenerator:
    """Fresh internal attribute names for counts and aggregates."""

    def __init__(self, prefix: str = "__q"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self, kind: str) -> str:
        self._counter += 1
        return f"{self._prefix}{kind}{self._counter}"


@dataclass
class LeafMapping:
    """Output of :func:`map_leaf` for one subquery predicate."""

    blocks: list[ThetaBlock]
    replacement: Expression  # the condition C over the fresh columns
    output_names: list[str]  # fresh columns introduced (to project away)


def map_leaf(
    leaf: SubqueryPredicate,
    inner_condition: Expression,
    names: NameGenerator,
) -> LeafMapping:
    """Apply the Table 1 row matching ``leaf``.

    ``inner_condition`` is the subquery's predicate with any nested
    subqueries already replaced by count conditions (Theorem 3.2) — i.e.
    it is an ordinary, subquery-free predicate whose references span the
    subquery source, the enclosing base, and possibly further-out scopes
    (the non-neighboring case, resolved later by push-down).
    """
    if isinstance(leaf, Exists):
        name = names.fresh("cnt")
        block = ThetaBlock([count_star(name)], inner_condition)
        if leaf.negated:
            replacement = Comparison("=", Column(name), Literal(0))
        else:
            replacement = Comparison(">", Column(name), Literal(0))
        return LeafMapping([block], replacement, [name])

    if isinstance(leaf, ScalarComparison):
        subquery = leaf.subquery
        if subquery.aggregate is not None:
            name = names.fresh("agg")
            spec = AggregateSpec(
                subquery.aggregate.function, subquery.aggregate.argument,
                name, subquery.aggregate.distinct,
            )
            block = ThetaBlock([spec], inner_condition)
            replacement = Comparison(leaf.op, leaf.outer, Column(name))
            return LeafMapping([block], replacement, [name])
        if subquery.item is None:
            raise TranslationError(
                "scalar comparison subquery must select an item or aggregate"
            )
        name = names.fresh("cnt")
        condition = conjoin(
            [inner_condition, Comparison(leaf.op, leaf.outer, subquery.item)]
        )
        block = ThetaBlock([count_star(name)], condition)
        replacement = Comparison("=", Column(name), Literal(1))
        return LeafMapping([block], replacement, [name])

    if isinstance(leaf, QuantifiedComparison):
        subquery = leaf.subquery
        if subquery.item is None:
            raise TranslationError("quantified comparison needs a selected item")
        comparison = Comparison(leaf.op, leaf.outer, subquery.item)
        if leaf.quantifier == "some":
            name = names.fresh("cnt")
            block = ThetaBlock(
                [count_star(name)], conjoin([inner_condition, comparison])
            )
            replacement = Comparison(">", Column(name), Literal(0))
            return LeafMapping([block], replacement, [name])
        # ALL: cnt1 counts θ ∧ φ, cnt2 counts θ; equal counts ⟺ every
        # θ-row satisfies φ (and the empty range passes — footnote 2).
        name1 = names.fresh("cnt")
        name2 = names.fresh("cnt")
        restrictive = ThetaBlock(
            [count_star(name1)], conjoin([inner_condition, comparison])
        )
        weak = ThetaBlock([count_star(name2)], inner_condition)
        replacement = Comparison("=", Column(name1), Column(name2))
        return LeafMapping([restrictive, weak], replacement, [name1, name2])

    raise TranslationError(f"no Table 1 rule for {leaf!r}")
