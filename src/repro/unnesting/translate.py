"""Algorithm SubqueryToGMDJ (Theorem 3.5): nested expressions → GMDJ plans.

The translator turns a :class:`~repro.algebra.nested.NestedSelect` — whose
predicate may contain arbitrarily nested subquery predicates — into a flat
algebra plan whose only exotic operator is the GMDJ:

1. **Normalize** — push negations to the atoms and eliminate ¬ in front of
   subquery predicates (:mod:`repro.unnesting.normalize`).
2. **Iterate** — replace each subquery leaf by a condition over fresh
   count/aggregate columns (Table 1, :mod:`repro.unnesting.rules`),
   stacking one GMDJ onto the base per leaf.  Leaves whose subqueries are
   themselves nested are flattened first, so the inner GMDJ extends the
   *detail* relation of the outer one (Theorem 3.2).
3. **Push down** — when a θ condition references a scope more than one
   level out (a *non-neighboring* correlation predicate), the referenced
   base table is joined into the base of the GMDJ where the reference
   occurs and re-linked upward with identity conjuncts level by level
   (Theorems 3.3/3.4; Example 3.4).  Exactly one join per level of
   non-neighboring depth is introduced — the same number a conventional
   join/outer-join unnesting would need.
4. **Project** — the fresh internal columns are projected away so the
   result schema equals the original query's schema.

The output is an ordinary operator tree; pass it through
:func:`repro.gmdj.optimize.optimize_plan` for the Section 4 optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    And,
    Column,
    Comparison,
    Expression,
    Not,
    Or,
    conjoin,
)
from repro.algebra.expressions import TRUE
from repro.algebra.nested import NestedSelect, SubqueryPredicate
from repro.algebra.operators import Join, Operator, Project, Rename, Select
from repro.algebra.rewrite import map_children
from repro.errors import TranslationError
from repro.gmdj.operator import GMDJ, ThetaBlock
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.unnesting.normalize import push_down_negations
from repro.unnesting.rules import NameGenerator, map_leaf


@dataclass
class _ContextLevel:
    """One enclosing query block: its (original) source and schema."""

    source: Operator
    schema: Schema


@dataclass
class _Pending:
    """A pushed-down base copy awaiting an identity link at ``level``."""

    level: int
    qualifier: str
    schema: Schema
    original: Operator


class _Translator:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.names = NameGenerator()
        self._push_counter = 0

    # -- public ---------------------------------------------------------------

    def translate_operator(self, operator: Operator) -> Operator:
        """Replace every NestedSelect (and flattenable APPLY) bottom-up."""
        rebuilt = map_children(operator, self.translate_operator)
        if isinstance(rebuilt, NestedSelect):
            return self._translate_nested_select(rebuilt)
        from repro.algebra.apply_op import Apply, apply_to_gmdj

        if isinstance(rebuilt, Apply):
            try:
                return apply_to_gmdj(
                    rebuilt, self.catalog,
                    count_name=self.names.fresh("cnt"),
                )
            except TranslationError:
                return rebuilt  # scalar / nested APPLY stays a loop
        return rebuilt

    # -- core -----------------------------------------------------------------

    def _translate_nested_select(self, nested: NestedSelect) -> Operator:
        child = self.translate_operator(nested.child)
        child_schema = child.schema(self.catalog)
        predicate = push_down_negations(nested.predicate)
        source, flat_predicate, pendings = self._desubquery(
            child, child_schema, predicate, context=[]
        )
        if pendings:
            levels = sorted({p.level for p in pendings})
            raise TranslationError(
                f"unresolved outer references target scopes {levels} beyond "
                f"the outermost query block"
            )
        selected = Select(source, flat_predicate)
        if source is child:
            return selected
        return Project(selected, list(child_schema.names))

    def _desubquery(
        self,
        source: Operator,
        source_schema: Schema,
        predicate: Expression,
        context: list[_ContextLevel],
    ) -> tuple[Operator, Expression, list[_Pending]]:
        """Replace subquery leaves in ``predicate``, stacking GMDJs on
        ``source``.  Returns the extended source, the flattened predicate,
        and pendings that callers at outer levels must resolve."""
        state = {
            "source": source,
            "schema": source_schema,
            "pendings": [],
            "embedded": {},  # level -> qualifier already joined into source
        }
        original = _ContextLevel(source, source_schema)

        def walk(node: Expression) -> Expression:
            if isinstance(node, SubqueryPredicate):
                return self._process_leaf(node, state, original, context)
            if isinstance(node, And):
                return And(walk(node.left), walk(node.right))
            if isinstance(node, Or):
                return Or(walk(node.left), walk(node.right))
            if isinstance(node, Not):
                return Not(walk(node.operand))
            return node

        flat = walk(predicate)
        return state["source"], flat, state["pendings"]

    def _process_leaf(
        self,
        leaf: SubqueryPredicate,
        state: dict,
        original: _ContextLevel,
        context: list[_ContextLevel],
    ) -> Expression:
        depth = len(context)  # our own level index is `depth`
        subquery = leaf.subquery
        inner_source = self.translate_operator(subquery.source)
        inner_schema = inner_source.schema(self.catalog)
        inner_source, inner_predicate, inner_pendings = self._desubquery(
            inner_source,
            inner_schema,
            subquery.predicate,
            context + [original],
        )
        detail_schema = inner_source.schema(self.catalog)
        # SQL scoping: bare references native to the subquery must keep
        # resolving against the subquery once its expressions move into
        # conditions over base ∪ detail (inner scope wins).
        from repro.algebra.rewrite import qualify_references

        inner_predicate = qualify_references(inner_predicate, detail_schema)
        leaf = self._qualified_leaf(leaf, original.schema, detail_schema)
        mapping = map_leaf(leaf, inner_predicate, self.names)
        blocks = mapping.blocks

        # Resolve pendings produced inside this subquery.
        carried: list[_Pending] = []
        for pending in inner_pendings:
            if pending.level == depth:
                # The pushed copy answers to *this* block's base: link it
                # with identity conjuncts on every base attribute.
                identity = self._identity_condition(
                    original.schema, pending.qualifier
                )
                blocks = [
                    ThetaBlock(b.aggregates, And(b.condition, identity))
                    for b in blocks
                ]
            else:
                # Propagate: embed the same original table at our own base
                # and link our copy to the inner copy, then re-raise the
                # pending one level up.
                qualifier = self._embed(state, pending.level, pending, context)
                link = conjoin(
                    _null_safe_equal(
                        Column(f"{qualifier}.{field.name}"),
                        Column(f"{pending.qualifier}.{field.name}"),
                    )
                    for field in pending.schema.fields
                )
                blocks = [
                    ThetaBlock(b.aggregates, And(b.condition, link))
                    for b in blocks
                ]
                carried.append(
                    _Pending(pending.level, qualifier, pending.schema,
                             pending.original)
                )

        # Detect non-neighboring references in the block conditions and
        # push the referenced outer bases down into our own base.
        blocks = self._resolve_non_neighbors(
            blocks, state, detail_schema, context
        )

        state["source"] = GMDJ(state["source"], inner_source, list(blocks))
        state["schema"] = state["source"].schema(self.catalog)
        state["pendings"].extend(carried)

        # The replacement condition may itself carry non-local references
        # (e.g. the outer operand of an aggregate comparison); those must
        # resolve against our base, which Table 1 guarantees for
        # neighboring predicates.
        for ref in mapping.replacement.references():
            if not state["schema"].has(ref):
                raise TranslationError(
                    f"replacement condition reference {ref!r} does not "
                    f"resolve at its own query block; non-neighboring "
                    f"outer operands of scalar comparisons are not supported"
                )
        return mapping.replacement

    # -- non-neighboring support ------------------------------------------------

    def _resolve_non_neighbors(
        self,
        blocks: list[ThetaBlock],
        state: dict,
        detail_schema: Schema,
        context: list[_ContextLevel],
    ) -> list[ThetaBlock]:
        resolved: list[ThetaBlock] = []
        for block in blocks:
            condition = block.condition
            base_schema: Schema = state["schema"]
            needed: dict[int, list[str]] = {}
            for ref in condition.references():
                if base_schema.has(ref) or detail_schema.has(ref):
                    continue
                level = self._find_level(ref, context)
                needed.setdefault(level, []).append(ref)
            for level, refs in sorted(needed.items()):
                qualifier = self._embed(state, level, None, context)
                level_schema = context[level].schema
                substitutions = {
                    ref: f"{qualifier}.{level_schema.field_of(ref).name}"
                    for ref in refs
                }
                condition = _substitute_references(condition, substitutions)
                base_schema = state["schema"]
            resolved.append(ThetaBlock(block.aggregates, condition))
        return resolved

    def _find_level(self, ref: str, context: list[_ContextLevel]) -> int:
        for level in range(len(context) - 1, -1, -1):
            if context[level].schema.has(ref):
                return level
        raise TranslationError(
            f"reference {ref!r} does not resolve in any enclosing scope"
        )

    def _embed(self, state, level, pending: _Pending | None, context) -> str:
        """Join a copy of an outer base into the current block's base.

        Returns the qualifier of the embedded copy; reuses an existing
        embedding of the same level when present.  Registers a new pending
        so the enclosing block links the copy to its own base (unless this
        call itself propagates an existing pending, in which case the
        caller re-raises it explicitly).
        """
        from repro.obs.tracer import span

        embedded: dict[int, str] = state["embedded"]
        if level in embedded:
            return embedded[level]
        self._push_counter += 1
        qualifier = f"__p{self._push_counter}"
        with span("pushdown copy", kind="pushdown", level=level,
                  qualifier=qualifier):
            return self._embed_fresh(
                state, level, pending, context, qualifier
            )

    def _embed_fresh(self, state, level, pending: "_Pending | None",
                     context, qualifier: str) -> str:
        embedded: dict[int, str] = state["embedded"]
        original = pending.original if pending is not None else context[level].source
        schema = pending.schema if pending is not None else context[level].schema
        state["source"] = Join(
            Rename(original, qualifier), state["source"], TRUE, kind="inner",
            method="nested",
        )
        state["schema"] = state["source"].schema(self.catalog)
        embedded[level] = qualifier
        if pending is None:
            state["pendings"].append(
                _Pending(level, qualifier, schema, original)
            )
        return qualifier

    @staticmethod
    def _qualified_leaf(leaf: SubqueryPredicate, base_schema: Schema,
                        detail_schema: Schema) -> SubqueryPredicate:
        """Qualify a leaf's outer operand (against the base) and its item /
        aggregate argument (against the detail) so the Table 1 mapping can
        mix them in one condition without capture."""
        from repro.algebra.aggregates import AggregateSpec
        from repro.algebra.nested import (
            Exists,
            QuantifiedComparison,
            ScalarComparison,
            Subquery,
        )
        from repro.algebra.rewrite import qualify_references

        subquery = leaf.subquery
        item = (
            qualify_references(subquery.item, detail_schema)
            if subquery.item is not None else None
        )
        aggregate = subquery.aggregate
        if aggregate is not None and aggregate.argument is not None:
            aggregate = AggregateSpec(
                aggregate.function,
                qualify_references(aggregate.argument, detail_schema),
                aggregate.output_name,
                aggregate.distinct,
            )
        rebuilt = Subquery(subquery.source, subquery.predicate, item,
                           aggregate)
        if isinstance(leaf, Exists):
            return Exists(rebuilt, leaf.negated)
        outer = qualify_references(leaf.outer, base_schema)
        if isinstance(leaf, ScalarComparison):
            return ScalarComparison(leaf.op, outer, rebuilt)
        assert isinstance(leaf, QuantifiedComparison)
        return QuantifiedComparison(leaf.op, leaf.quantifier, outer, rebuilt)

    @staticmethod
    def _identity_condition(base_schema: Schema, qualifier: str) -> Expression:
        return conjoin(
            _null_safe_equal(
                Column(field.full_name),
                Column(f"{qualifier}.{field.name}"),
            )
            for field in base_schema.fields
        )


def _null_safe_equal(left: Expression, right: Expression) -> Expression:
    """``left IS NOT DISTINCT FROM right`` — TRUE on NULL/NULL.

    Identity links between a base tuple and its pushed-down copy must
    match the copy even on NULL attributes; a plain ``=`` conjunct is
    UNKNOWN there and silently drops every base row containing a NULL
    (caught by the differential fuzzer).
    """
    from repro.algebra.expressions import IsNull, Or

    return Or(
        Comparison("=", left, right),
        And(IsNull(left), IsNull(right)),
    )


def _substitute_references(
    expression: Expression, substitutions: dict[str, str]
) -> Expression:
    from repro.algebra.expressions import (
        Arithmetic,
        IsNull,
        Literal,
        TruthLiteral,
    )

    def walk(node: Expression) -> Expression:
        if isinstance(node, Column):
            target = substitutions.get(node.reference)
            return Column(target) if target is not None else node
        if isinstance(node, Comparison):
            return Comparison(node.op, walk(node.left), walk(node.right))
        if isinstance(node, And):
            return And(walk(node.left), walk(node.right))
        if isinstance(node, Or):
            return Or(walk(node.left), walk(node.right))
        if isinstance(node, Not):
            return Not(walk(node.operand))
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, walk(node.left), walk(node.right))
        if isinstance(node, IsNull):
            return IsNull(walk(node.operand), node.negated)
        if isinstance(node, (Literal, TruthLiteral)):
            return node
        return node

    return walk(expression)


def subquery_to_gmdj(query, catalog: Catalog, optimize: bool = False,
                     coalesce: bool = True, completion: bool = True):
    """Translate a nested query into a GMDJ plan (Algorithm SubqueryToGMDJ).

    ``query`` is any operator tree; every :class:`NestedSelect` inside it
    is rewritten.  With ``optimize=True`` the Section 4 optimizations
    (coalescing, completion fusion) are applied to the result; the two
    flags select them individually for ablation studies.
    """
    from repro.obs.tracer import span

    with span("SubqueryToGMDJ", kind="translate", optimize=optimize):
        plan = _Translator(catalog).translate_operator(query)
        if optimize:
            from repro.gmdj.optimize import optimize_plan

            plan = optimize_plan(plan, coalesce=coalesce,
                                 completion=completion, catalog=catalog)
        return plan
