"""Predicate normalization (the first stage of Algorithm SubqueryToGMDJ).

De Morgan's laws push negations down to atomic predicates, and negations
in front of subquery predicates are eliminated using the rules listed in
the paper's algorithm box::

    ¬(t φ S)       ⇒  t φ̄ S
    ¬(t φ_some S)  ⇒  t φ̄_all S
    ¬(t φ_all S)   ⇒  t φ̄_some S
    ¬(∃ S)         ⇒  ∄ S          (and vice versa)

All of these are exact under three-valued logic (NOT UNKNOWN = UNKNOWN on
both sides), which is what makes NULLs in the data "handled correctly"
(Theorem 3.5's premise).  Ordinary comparisons are complemented the same
way; a residual ``NOT`` may remain only over predicates with no cheaper
complement (e.g. ``NOT (x IS NULL)`` becomes ``x IS NOT NULL`` though, so
in practice the result is negation-free above the atoms).
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    Comparison,
    Expression,
    IsNull,
    Not,
    Or,
    TruthLiteral,
)
from repro.algebra.nested import (
    Exists,
    QuantifiedComparison,
    ScalarComparison,
)
from repro.algebra.expressions import COMPLEMENT


def push_down_negations(predicate: Expression) -> Expression:
    """Return an equivalent predicate with ¬ eliminated above the atoms."""
    return _normalize(predicate, negated=False)


def _normalize(predicate: Expression, negated: bool) -> Expression:
    if isinstance(predicate, Not):
        return _normalize(predicate.operand, not negated)
    if isinstance(predicate, And):
        left = _normalize(predicate.left, negated)
        right = _normalize(predicate.right, negated)
        return Or(left, right) if negated else And(left, right)
    if isinstance(predicate, Or):
        left = _normalize(predicate.left, negated)
        right = _normalize(predicate.right, negated)
        return And(left, right) if negated else Or(left, right)
    if not negated:
        return _normalize_leaf(predicate)
    return _complement_leaf(predicate)


def _normalize_leaf(predicate: Expression) -> Expression:
    """Normalize subquery bodies inside a non-negated leaf."""
    if isinstance(predicate, (Exists, ScalarComparison, QuantifiedComparison)):
        return _with_normalized_subquery(predicate)
    return predicate


def _complement_leaf(predicate: Expression) -> Expression:
    if isinstance(predicate, Comparison):
        return predicate.complemented()
    if isinstance(predicate, IsNull):
        return IsNull(predicate.operand, not predicate.negated)
    if isinstance(predicate, TruthLiteral):
        return TruthLiteral(predicate.value.not_())
    if isinstance(predicate, Exists):
        return _with_normalized_subquery(
            Exists(predicate.subquery, not predicate.negated)
        )
    if isinstance(predicate, ScalarComparison):
        return _with_normalized_subquery(
            ScalarComparison(
                COMPLEMENT[predicate.op], predicate.outer, predicate.subquery
            )
        )
    if isinstance(predicate, QuantifiedComparison):
        flipped = "all" if predicate.quantifier == "some" else "some"
        return _with_normalized_subquery(
            QuantifiedComparison(
                COMPLEMENT[predicate.op], flipped, predicate.outer,
                predicate.subquery,
            )
        )
    # No known complement: keep an explicit NOT (still correct, just
    # opaque to the later rewrite stages).
    return Not(predicate)


def _with_normalized_subquery(leaf):
    """Normalize the predicate inside a subquery leaf, recursively."""
    from repro.algebra.nested import Subquery

    subquery = leaf.subquery
    normalized = push_down_negations(subquery.predicate)
    if normalized is subquery.predicate:
        return leaf
    rebuilt = Subquery(
        subquery.source, normalized, subquery.item, subquery.aggregate
    )
    if isinstance(leaf, Exists):
        return Exists(rebuilt, leaf.negated)
    if isinstance(leaf, ScalarComparison):
        return ScalarComparison(leaf.op, leaf.outer, rebuilt)
    return QuantifiedComparison(leaf.op, leaf.quantifier, leaf.outer, rebuilt)
